// Package mapred implements a miniature MapReduce engine in the spirit of
// Hadoop, sufficient to express the paper's sPCA-MapReduce and Mahout-PCA
// jobs: user-defined mappers with setup/cleanup (enabling the paper's
// "stateful combiner" technique), optional associative combiners, reducers,
// composite keys, failure injection with task retry, and exact accounting of
// map-output/shuffle bytes through the simulated cluster.
//
// Execution is real (mappers and reducers run concurrently on a worker pool)
// while time is simulated: the engine charges each phase's compute, shuffle
// and disk traffic to the cluster cost model. Like Hadoop, map output is
// written to disk before being shuffled, so every shuffle byte is also a
// disk byte — this is what gives sPCA its "low disk footprint" advantage.
package mapred

import (
	"fmt"
	"sort"
	"sync"

	"spca/internal/cluster"
	"spca/internal/matrix"
)

// Emitter receives key/value pairs from mappers, and lets tasks charge
// arithmetic work to the simulated cluster.
type Emitter[K comparable, V any] interface {
	Emit(key K, value V)
	// AddOps charges n arithmetic operations to the current phase.
	AddOps(n int64)
}

// Mapper processes input records. NewMapper is called once per map task, so
// implementations can keep per-task state (the stateful in-mapper combiner of
// §4.1) and flush it in Cleanup.
type Mapper[I any, K comparable, V any] interface {
	Map(rec I, out Emitter[K, V])
	Cleanup(out Emitter[K, V])
}

// MapperFunc adapts a plain function to a stateless Mapper.
type MapperFunc[I any, K comparable, V any] func(rec I, out Emitter[K, V])

// Map implements Mapper.
func (f MapperFunc[I, K, V]) Map(rec I, out Emitter[K, V]) { f(rec, out) }

// Cleanup implements Mapper (no-op).
func (f MapperFunc[I, K, V]) Cleanup(out Emitter[K, V]) {}

// Job describes one MapReduce job. The byte-size callbacks drive the
// intermediate-data accounting; they must reflect the serialized size of the
// corresponding records.
type Job[I any, K comparable, V any, R any] struct {
	Name      string
	NewMapper func(task int) Mapper[I, K, V]
	// Combine optionally merges two values for the same key before the
	// shuffle (a Hadoop combiner). It must be associative and commutative.
	Combine func(a, b V) V
	// Reduce folds all values for a key into the job output for that key.
	Reduce func(key K, values []V, out Ops) R

	InputBytes  func(I) int64
	KeyBytes    func(K) int64
	ValueBytes  func(V) int64
	ResultBytes func(R) int64
}

// Ops lets reducers charge arithmetic work.
type Ops interface{ AddOps(n int64) }

// Engine runs jobs against a simulated cluster.
type Engine struct {
	Cluster *cluster.Cluster
	// Splits is the number of map tasks per job (default: 2x total cores).
	Splits int
	// Reducers is the number of reduce tasks per job (default: total cores).
	Reducers int
	// FailureRate injects task-attempt failures with this probability.
	FailureRate float64
	// MaxAttempts bounds retries per task (default 4, like Hadoop).
	MaxAttempts int

	mu  sync.Mutex
	rng *matrix.RNG
}

// NewEngine returns an engine with Hadoop-like defaults on cl.
func NewEngine(cl *cluster.Cluster) *Engine {
	return &Engine{
		Cluster:     cl,
		Splits:      2 * cl.TotalCores(),
		Reducers:    cl.TotalCores(),
		MaxAttempts: 4,
		rng:         matrix.NewRNG(0x4D52), // "MR"
	}
}

// SetFailureSeed reseeds the failure-injection RNG for reproducible chaos.
func (e *Engine) SetFailureSeed(seed uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rng = matrix.NewRNG(seed)
}

func (e *Engine) attemptFails() bool {
	if e.FailureRate <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rng.Float64() < e.FailureRate
}

type emitter[K comparable, V any] struct {
	pairs map[K][]V
	merge func(a, b V) V // nil: append values
	ops   int64
}

func (em *emitter[K, V]) Emit(k K, v V) {
	if em.merge != nil {
		// Combiner path: keep a single-slot value per key and merge in
		// place, rather than allocating a fresh one-element slice per emit.
		if cur, ok := em.pairs[k]; ok {
			cur[0] = em.merge(cur[0], v)
			return
		}
		em.pairs[k] = []V{v}
		return
	}
	em.pairs[k] = append(em.pairs[k], v)
}

func (em *emitter[K, V]) AddOps(n int64) { em.ops += n }

type opsCounter struct{ n int64 }

func (o *opsCounter) AddOps(n int64) { o.n += n }

// Run executes the job over the input records and returns the reduce output
// per key. It is the moral equivalent of submitting a job to a Hadoop
// cluster and reading its part files back.
func Run[I any, K comparable, V any, R any](e *Engine, job Job[I, K, V, R], input []I) (map[K]R, error) {
	if job.NewMapper == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mapred: job %q missing mapper or reducer", job.Name)
	}
	splits := e.Splits
	if splits <= 0 {
		splits = 2 * e.Cluster.TotalCores()
	}
	if splits > len(input) && len(input) > 0 {
		splits = len(input)
	}
	if splits == 0 {
		splits = 1
	}

	// ---- Map phase ----
	type taskOut struct {
		pairs map[K][]V
		ops   int64
	}
	outs := make([]taskOut, splits)
	var inputBytes int64
	if job.InputBytes != nil {
		for _, rec := range input {
			inputBytes += job.InputBytes(rec)
		}
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, e.Cluster.TotalCores())
	var attempts int64
	var attemptsMu sync.Mutex
	for t := 0; t < splits; t++ {
		lo := t * len(input) / splits
		hi := (t + 1) * len(input) / splits
		wg.Add(1)
		go func(task, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			maxAtt := e.MaxAttempts
			if maxAtt <= 0 {
				maxAtt = 4
			}
			for att := 1; att <= maxAtt; att++ {
				attemptsMu.Lock()
				attempts++
				attemptsMu.Unlock()
				em := &emitter[K, V]{pairs: make(map[K][]V), merge: job.Combine}
				m := job.NewMapper(task)
				for i := lo; i < hi; i++ {
					m.Map(input[i], em)
				}
				m.Cleanup(em)
				if att < maxAtt && e.attemptFails() {
					// Attempt lost: its work is still charged (the cluster
					// really spent the cycles) but its output is discarded.
					outs[task].ops += em.ops
					continue
				}
				outs[task].pairs = em.pairs
				outs[task].ops += em.ops
				return
			}
		}(t, lo, hi)
	}
	wg.Wait()

	// ---- Shuffle: group map output by key, counting bytes ----
	var mapOps, shuffleBytes int64
	grouped := make(map[K][]V)
	for _, o := range outs {
		mapOps += o.ops
		for k, vs := range o.pairs {
			var kb int64 = 8
			if job.KeyBytes != nil {
				kb = job.KeyBytes(k)
			}
			for _, v := range vs {
				var vb int64 = 8
				if job.ValueBytes != nil {
					vb = job.ValueBytes(v)
				}
				shuffleBytes += kb + vb
			}
			grouped[k] = append(grouped[k], vs...)
		}
	}
	e.Cluster.RunPhase(cluster.PhaseStats{
		Name:         job.Name + "/map",
		ComputeOps:   mapOps,
		ShuffleBytes: shuffleBytes,
		// Hadoop spills map output to local disk and reads the input split
		// from HDFS.
		DiskBytes: inputBytes + shuffleBytes,
		Tasks:     attempts,
		Records:   int64(len(input)),
	})

	// ---- Reduce phase ----
	reducers := e.Reducers
	if reducers <= 0 {
		reducers = e.Cluster.TotalCores()
	}
	keys := make([]K, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	// Stable key order so runs are deterministic regardless of map iteration.
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})

	// Keys are partitioned into the configured number of reduce tasks (like
	// Hadoop's partitioner), so Engine.Reducers governs scheduling, not just
	// the charged task overhead. Task concurrency is bounded by the reduce
	// slots and the cluster's cores, whichever is smaller.
	redTasks := reducers
	if len(keys) < redTasks {
		redTasks = len(keys)
	}
	if redTasks == 0 {
		redTasks = 1
	}
	result := make(map[K]R, len(keys))
	var resMu sync.Mutex
	var redOps, outBytes int64
	var redWg sync.WaitGroup
	slots := reducers
	if tc := e.Cluster.TotalCores(); tc < slots {
		slots = tc
	}
	redSem := make(chan struct{}, slots)
	for t := 0; t < redTasks; t++ {
		lo := t * len(keys) / redTasks
		hi := (t + 1) * len(keys) / redTasks
		redWg.Add(1)
		go func(taskKeys []K) {
			defer redWg.Done()
			redSem <- struct{}{}
			defer func() { <-redSem }()
			oc := &opsCounter{}
			var taskBytes int64
			partial := make(map[K]R, len(taskKeys))
			for _, k := range taskKeys {
				r := job.Reduce(k, grouped[k], oc)
				var rb int64 = 8
				if job.ResultBytes != nil {
					rb = job.ResultBytes(r)
				}
				taskBytes += rb
				partial[k] = r
			}
			resMu.Lock()
			for k, r := range partial {
				result[k] = r
			}
			redOps += oc.n
			outBytes += taskBytes
			resMu.Unlock()
		}(keys[lo:hi])
	}
	redWg.Wait()
	e.Cluster.RunPhase(cluster.PhaseStats{
		Name:       job.Name + "/reduce",
		ComputeOps: redOps,
		DiskBytes:  outBytes, // reducers write results to HDFS
		Tasks:      int64(redTasks),
		// Job output is inter-job intermediate data: the next job (or the
		// driver) reads it back. This is the paper's intermediate-data
		// metric.
		MaterializedBytes: outBytes,
	})
	return result, nil
}
