package mapred

import (
	"fmt"
	"testing"

	"spca/internal/cluster"
	"spca/internal/matrix"
)

// denseVecJob is a miniature YtXJob: int records scatter d-wide vector
// partials over a small key range (with one wide d²-style key at -1 and a
// Combine merging in-task duplicates), so it exercises every dense-path
// feature at once — negative MinKey, WideKeys, in-task merges, and the
// vector codec.
func denseVecJob(keys, d int) Job[int, int, []float64, []float64] {
	return Job[int, int, []float64, []float64]{
		Name: "denseVec",
		NewMapper: func(task int) Mapper[int, int, []float64] {
			return MapperFunc[int, int, []float64](func(rec int, out Emitter[int, []float64]) {
				v := make([]float64, d)
				for i := range v {
					v[i] = float64(rec*d + i + 1)
				}
				out.Emit(rec%keys, v)
				wide := make([]float64, d*d)
				for i := range wide {
					wide[i] = float64(rec + i)
				}
				out.Emit(-1, wide)
				out.AddOps(int64(d + d*d))
			})
		},
		Combine: func(a, b []float64) []float64 {
			matrix.AXPY(1, b, a)
			return a
		},
		Reduce: func(k int, vs [][]float64, o Ops) []float64 {
			out := make([]float64, len(vs[0]))
			for _, v := range vs {
				matrix.AXPY(1, v, out)
				o.AddOps(int64(len(v)))
			}
			return out
		},
		InputBytes:  func(int) int64 { return 16 },
		KeyBytes:    BytesOfInt,
		ValueBytes:  BytesOfVec,
		ResultBytes: BytesOfVec,
		Dense:       &DenseSpec{MinKey: -1, Keys: keys + 1, Width: d, WideKeys: map[int]int{-1: d * d}},
	}
}

// denseScalarJob is a miniature meanJob: scalar values over a dense range.
func denseScalarJob(keys int) Job[int, int, float64, float64] {
	return Job[int, int, float64, float64]{
		Name: "denseScalar",
		NewMapper: func(task int) Mapper[int, int, float64] {
			return MapperFunc[int, int, float64](func(rec int, out Emitter[int, float64]) {
				out.Emit(rec%keys, float64(rec)+0.5)
				out.AddOps(1)
			})
		},
		Combine: func(a, b float64) float64 { return a + b },
		Reduce: func(k int, vs []float64, o Ops) float64 {
			var s float64
			for _, v := range vs {
				s += v
				o.AddOps(1)
			}
			return s
		},
		InputBytes: func(int) int64 { return 16 },
		KeyBytes:   BytesOfInt,
		ValueBytes: BytesOfFloat64,
		Dense:      &DenseSpec{MinKey: 0, Keys: keys, Width: 1},
	}
}

func denseTestPlans() map[string]*cluster.FaultPlan {
	return map[string]*cluster.FaultPlan{
		"fault-free": nil,
		"failures":   {Seed: 7, TaskFailureRate: 0.25},
		"node-loss":  {Seed: 11, NodeLossRate: 0.2, TaskFailureRate: 0.1},
		"stragglers": {Seed: 13, StragglerRate: 0.3},
		"speculative": {
			Seed: 17, StragglerRate: 0.3, SpeculativeExecution: true,
			TaskFailureRate: 0.15,
		},
		"corruption": {Seed: 19, CorruptionRate: 0.1, TaskFailureRate: 0.1},
	}
}

// TestDenseMatchesGenericVec pins the tentpole invariant: for every fault
// plan, the flat-slab fast path must produce bit-identical results AND
// bit-identical cluster metrics (every simulated-time charge, every recovery
// and corruption counter) to the generic map-based shuffle.
func TestDenseMatchesGenericVec(t *testing.T) {
	input := make([]int, 300)
	for i := range input {
		input[i] = i
	}
	for name, plan := range denseTestPlans() {
		t.Run(name, func(t *testing.T) {
			gen := testEngine()
			gen.DisableDense = true
			gen.Faults = plan
			fast := testEngine()
			fast.Faults = plan

			wantRes, wantErr := Run(gen, denseVecJob(37, 4), input)
			gotRes, gotErr := Run(fast, denseVecJob(37, 4), input)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch: generic %v, dense %v", wantErr, gotErr)
			}
			if wantErr == nil {
				if len(gotRes) != len(wantRes) {
					t.Fatalf("key count: generic %d, dense %d", len(wantRes), len(gotRes))
				}
				for k, wv := range wantRes {
					gv, ok := gotRes[k]
					if !ok || len(gv) != len(wv) {
						t.Fatalf("key %d: generic %v, dense %v", k, wv, gv)
					}
					for i := range wv {
						if gv[i] != wv[i] {
							t.Fatalf("key %d[%d]: generic %v, dense %v (not bit-identical)", k, i, wv[i], gv[i])
						}
					}
				}
			}
			if wm, gm := gen.Cluster.Metrics(), fast.Cluster.Metrics(); wm != gm {
				t.Fatalf("metrics diverge:\n generic %+v\n dense   %+v", wm, gm)
			}
		})
	}
}

// TestDenseMatchesGenericScalar is the float64-codec differential.
func TestDenseMatchesGenericScalar(t *testing.T) {
	input := make([]int, 500)
	for i := range input {
		input[i] = i
	}
	for name, plan := range denseTestPlans() {
		t.Run(name, func(t *testing.T) {
			gen := testEngine()
			gen.DisableDense = true
			gen.Faults = plan
			fast := testEngine()
			fast.Faults = plan

			wantRes, wantErr := Run(gen, denseScalarJob(101), input)
			gotRes, gotErr := Run(fast, denseScalarJob(101), input)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch: generic %v, dense %v", wantErr, gotErr)
			}
			if wantErr == nil {
				if len(gotRes) != len(wantRes) {
					t.Fatalf("key count: generic %d, dense %d", len(wantRes), len(gotRes))
				}
				for k, wv := range wantRes {
					if gv := gotRes[k]; gv != wv {
						t.Fatalf("key %d: generic %v, dense %v", k, wv, gv)
					}
				}
			}
			if wm, gm := gen.Cluster.Metrics(), fast.Cluster.Metrics(); wm != gm {
				t.Fatalf("metrics diverge:\n generic %+v\n dense   %+v", wm, gm)
			}
		})
	}
}

// TestDenseFailedAttemptReset forces map-attempt failures and checks the
// slab rewind: a retry must reproduce exactly the payload a fresh attempt
// would, or the commit/consume digest handshake (and the result) breaks.
// FailedAttempts > 0 asserts the reset path actually ran.
func TestDenseFailedAttemptReset(t *testing.T) {
	input := make([]int, 200)
	for i := range input {
		input[i] = i
	}
	plan := &cluster.FaultPlan{Seed: 23, TaskFailureRate: 0.3, MaxAttempts: 8}
	gen := testEngine()
	gen.DisableDense = true
	gen.Faults = plan
	fast := testEngine()
	fast.Faults = plan

	wantRes, err := Run(gen, denseVecJob(11, 3), input)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := Run(fast, denseVecJob(11, 3), input)
	if err != nil {
		t.Fatal(err)
	}
	m := fast.Cluster.Metrics()
	if m.FailedAttempts == 0 {
		t.Fatal("fault plan injected no failures; the reset path was not exercised")
	}
	for k, wv := range wantRes {
		gv := gotRes[k]
		for i := range wv {
			if gv[i] != wv[i] {
				t.Fatalf("key %d[%d]: generic %v, dense %v after retries", k, i, wv[i], gv[i])
			}
		}
	}
	if wm := gen.Cluster.Metrics(); wm != m {
		t.Fatalf("metrics diverge under retries:\n generic %+v\n dense   %+v", wm, m)
	}
}

// projStyleJob mimics the rsvd projection job: one unique key per record, no
// Combine, Reduce returning vs[0] — the shape whose results alias slab rows.
func projStyleJob(n, d int) Job[int, int, []float64, []float64] {
	return Job[int, int, []float64, []float64]{
		Name: "denseProj",
		NewMapper: func(task int) Mapper[int, int, []float64] {
			return MapperFunc[int, int, []float64](func(rec int, out Emitter[int, []float64]) {
				v := make([]float64, d)
				for i := range v {
					v[i] = float64(rec) + float64(i)/8
				}
				out.Emit(rec, v)
				out.AddOps(int64(d))
			})
		},
		Reduce:      func(_ int, vs [][]float64, _ Ops) []float64 { return vs[0] },
		KeyBytes:    BytesOfInt,
		ValueBytes:  BytesOfVec,
		ResultBytes: BytesOfVec,
		Dense:       &DenseSpec{MinKey: 0, Keys: n, Width: d},
	}
}

// TestDenseSlabReuseAliasing pins the pooled-slab lifetime contract: a
// second Run on the same engine reuses the first Run's slabs, so the first
// result's vectors are views that the second Run overwrites. Drivers copy
// before the next Run (all callers do); this test asserts both the reuse
// (pointer identity — the regression would be a silent per-Run reallocation)
// and the correctness of the second result.
func TestDenseSlabReuseAliasing(t *testing.T) {
	const n, d = 64, 5
	input := make([]int, n)
	for i := range input {
		input[i] = i
	}
	e := testEngine()
	job := projStyleJob(n, d)

	first, err := Run(e, job, input)
	if err != nil {
		t.Fatal(err)
	}
	firstView := first[0]
	firstVal := firstView[0]

	second, err := Run(e, job, input)
	if err != nil {
		t.Fatal(err)
	}
	if &second[0][0] != &firstView[0] {
		t.Fatal("second Run did not reuse the first Run's slab row for key 0 — slab pooling regressed")
	}
	if second[0][0] != firstVal {
		t.Fatalf("second Run corrupted key 0: got %v want %v", second[0][0], firstVal)
	}
	for k, v := range second {
		want := float64(k)
		if v[0] != want {
			t.Fatalf("second Run key %d = %v, want %v", k, v[0], want)
		}
	}
}

// TestDenseEmitterZeroAllocs is the allocation gate of the tentpole: with a
// warm slab, a full attempt cycle (reset + emits, including in-task merges)
// must allocate nothing.
func TestDenseEmitterZeroAllocs(t *testing.T) {
	const keys, d = 40, 6
	spec := &DenseSpec{MinKey: -1, Keys: keys + 1, Width: d, WideKeys: map[int]int{-1: d * d}}
	slab := new(denseSlab)
	slab.prepare(spec)
	em := &denseEmitter[[]float64]{
		name: "gate", slab: slab,
		combine: func(a, b []float64) []float64 {
			matrix.AXPY(1, b, a)
			return a
		},
		cd: vecCodec,
		kb: BytesOfInt,
		vb: BytesOfVec,
	}
	v := make([]float64, d)
	wide := make([]float64, d*d)
	attempt := func() {
		em.reset()
		for k := 0; k < keys; k++ {
			em.Emit(k, v)
			em.Emit(k, v) // duplicate: exercises the merge path
		}
		em.Emit(-1, wide)
		em.AddOps(1)
	}
	attempt() // warm the slab so claim never grows
	if allocs := testing.AllocsPerRun(100, attempt); allocs != 0 {
		t.Fatalf("dense emitter steady state: %v allocs/op, want 0", allocs)
	}
}

// TestDenseKeyLessMatchesSprintOrder pins the reduce partitioner: dense key
// order must reproduce the generic path's fmt.Sprint string order exactly,
// or fault plans would draw different per-task coordinates.
func TestDenseKeyLessMatchesSprintOrder(t *testing.T) {
	keys := []int{-1000, -101, -11, -5, -2, -1, 0, 1, 2, 5, 9, 10, 11, 19, 99, 100, 101, 999, 1000}
	for _, a := range keys {
		for _, b := range keys {
			want := fmt.Sprint(a) < fmt.Sprint(b)
			if got := denseKeyLess(a, b); got != want {
				t.Fatalf("denseKeyLess(%d, %d) = %v, fmt.Sprint order says %v", a, b, got, want)
			}
		}
	}
}

// TestDensePanics pins the misuse guards: out-of-range keys and duplicate
// emits without a Combine must fail loudly, not corrupt accounting.
func TestDensePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	spec := &DenseSpec{MinKey: 0, Keys: 4, Width: 2}
	slab := new(denseSlab)
	slab.prepare(spec)
	em := &denseEmitter[[]float64]{name: "guard", slab: slab, cd: vecCodec, kb: BytesOfInt, vb: BytesOfVec}
	mustPanic("out-of-range", func() { em.Emit(9, []float64{1, 2}) })
	mustPanic("over-wide", func() { em.Emit(0, []float64{1, 2, 3}) })
	em.Emit(1, []float64{1, 2})
	mustPanic("dup-no-combine", func() { em.Emit(1, []float64{3, 4}) })
}
