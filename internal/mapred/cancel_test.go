package mapred

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"spca/internal/cluster"
)

// interruptedEngine returns a test engine whose cluster polls ctx.
func interruptedEngine(ctx context.Context) *Engine {
	e := testEngine()
	e.Cluster.SetInterrupt(cluster.NewInterrupt(ctx, 0))
	return e
}

// waitGoroutines polls until the goroutine count drops back to the baseline
// (workers parked, nothing leaked) or the deadline passes.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestRunCanceledMidMap cancels the context from inside a mapper. Run must
// finish the map phase (its charge stays on the books), then unwind at the
// post-map boundary with an error matching both the cluster sentinel and the
// stdlib's, leaking no goroutines.
func TestRunCanceledMidMap(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := interruptedEngine(ctx)
	var once sync.Once
	job := wordCountJob()
	job.NewMapper = func(int) Mapper[string, string, int64] {
		return MapperFunc[string, string, int64](func(line string, out Emitter[string, int64]) {
			once.Do(cancel)
			out.Emit(line, 1)
		})
	}
	_, err := Run(e, job, []string{"a", "b", "c", "d"})
	if !errors.Is(err, cluster.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	m := e.Cluster.Metrics()
	if m.Phases == 0 || m.SimSeconds <= 0 {
		t.Fatalf("map phase not charged before unwind: %+v", m)
	}
	waitGoroutines(t, base)
}

// TestRunDeadlineMidMap lets a context deadline expire while mappers are
// running; the boundary poll reports the deadline sentinel, not cancel.
func TestRunDeadlineMidMap(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	e := interruptedEngine(ctx)
	job := wordCountJob()
	job.NewMapper = func(int) Mapper[string, string, int64] {
		return MapperFunc[string, string, int64](func(line string, out Emitter[string, int64]) {
			time.Sleep(30 * time.Millisecond) // guarantees the deadline passes mid-phase
			out.Emit(line, 1)
		})
	}
	_, err := Run(e, job, []string{"a", "b"})
	if !errors.Is(err, cluster.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded wrapping context.DeadlineExceeded, got %v", err)
	}
	if errors.Is(err, cluster.ErrCanceled) {
		t.Fatalf("deadline expiry misreported as cancel: %v", err)
	}
}

// TestRunEntryPollPreservesJobSeq pins the resume invariant: a job refused at
// the entry poll must not advance the engine's fault cursor, so a later
// resumed incarnation replays the exact same fault draws.
func TestRunEntryPollPreservesJobSeq(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the job starts
	e := interruptedEngine(ctx)
	seq := e.JobSeq()
	_, err := Run(e, wordCountJob(), []string{"a b"})
	if !errors.Is(err, cluster.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if got := e.JobSeq(); got != seq {
		t.Fatalf("entry poll advanced the fault cursor: jobSeq %d -> %d", seq, got)
	}
	m := e.Cluster.Metrics()
	if m.Phases != 0 || m.SimSeconds != 0 {
		t.Fatalf("refused job charged phases: %+v", m)
	}
}

// TestRunDenseCanceledMidMap is TestRunCanceledMidMap on the flat-slab
// DenseSpec fast path, which has its own runDense poll sites.
func TestRunDenseCanceledMidMap(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := interruptedEngine(ctx)
	job := denseScalarJob(4)
	inner := job.NewMapper
	var once sync.Once
	job.NewMapper = func(task int) Mapper[int, int, float64] {
		m := inner(task)
		return MapperFunc[int, int, float64](func(rec int, out Emitter[int, float64]) {
			once.Do(cancel)
			m.Map(rec, out)
		})
	}
	_, err := Run(e, job, []int{1, 2, 3, 4, 5, 6, 7, 8})
	if !errors.Is(err, cluster.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if m := e.Cluster.Metrics(); m.Phases == 0 {
		t.Fatalf("dense map phase not charged before unwind: %+v", m)
	}
	waitGoroutines(t, base)
}

// TestRunDenseEntryPollPreservesJobSeq is the fault-cursor invariant on the
// DenseSpec path.
func TestRunDenseEntryPollPreservesJobSeq(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := interruptedEngine(ctx)
	seq := e.JobSeq()
	_, err := Run(e, denseScalarJob(4), []int{1, 2, 3})
	if !errors.Is(err, cluster.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if got := e.JobSeq(); got != seq {
		t.Fatalf("entry poll advanced the fault cursor: jobSeq %d -> %d", seq, got)
	}
}
