// The flat-slab shuffle fast path. Every hot sPCA job — column means, the
// Frobenius norm, the consolidated YtX/XtX/ΣX pass, ss3, and the rsvd
// projection and Bᵀ jobs — shuffles a small dense integer key range whose
// values are flat float64 vectors. For that shape the generic map-based
// emitter, the post-hoc digest walks, and (dominant of all) the
// fmt.Sprint-based key sort are pure overhead: runDense replaces them with
// pooled per-task slabs ([]float64 rows plus an offset table), incremental
// byte/digest accounting at emit time, and an allocation-free key
// comparator that reproduces the generic path's string order exactly.
//
// The fast path is an optimization, not a semantic fork: results, simulated
// -time charges, trace spans, and fault/corruption behavior are bit-identical
// to the generic path (dense_test.go pins metrics equality under fault plans;
// the golden fingerprint suites pin end-to-end model identity).
package mapred

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"spca/internal/cluster"
	"spca/internal/trace"
)

// DenseSpec opts a job into the flat-slab shuffle fast path. It applies to
// jobs whose keys form a dense integer interval [MinKey, MinKey+Keys) and
// whose mappers emit each key at most once per task — always true for the
// stateful in-mapper combiners (§4.1), which flush one value per key from
// Cleanup. With a Combine, duplicate in-task emits merge in place; without
// one they panic (a naive mapper that needs per-emit boxing should not
// declare a spec).
//
// Accounting parity with the generic path holds by construction: payload
// bytes and the cluster.PayloadDigest are maintained incrementally at first
// emit, which is sound because the digest combines entries by wrapping
// addition (order-independent) and a Combine merge never changes a value's
// modeled wire size — the merged value keeps the stored length, enforced at
// merge time. The consume side re-walks the slab, mirroring the generic
// path's commit/verify handshake bit for bit.
//
// Lifetime contract: values handed to Reduce (and results that alias them,
// e.g. a Reduce returning vs[0]) point into pooled slabs and stay valid only
// until the engine's next Run; drivers must copy what they keep, exactly as
// they already must for pooled mapper buffers. Reduce must not retain the
// values slice itself — it is reused between keys.
type DenseSpec struct {
	// MinKey is the smallest key in the job's key space (e.g. the negative
	// composite keys routing XtX/ΣX partials).
	MinKey int
	// Keys is the size of the key interval: valid keys satisfy
	// MinKey <= k < MinKey+Keys.
	Keys int
	// Width is the value width in float64 words (1 for scalar-valued jobs).
	Width int
	// WideKeys overrides Width for individual keys — e.g. the d²-wide XtX
	// partial riding in a job of d-wide YtX rows.
	WideKeys map[int]int
}

// widthOf returns the declared width bound for a key slot.
func (s *DenseSpec) widthOf(slot int) int {
	if s.WideKeys != nil {
		if w, ok := s.WideKeys[s.MinKey+slot]; ok {
			return w
		}
	}
	return s.Width
}

// slabKey pools slabs by layout shape rather than by spec pointer, so
// engines that outlive many fits (each building fresh specs) keep a bounded
// pool: one entry per distinct job shape.
type slabKey struct {
	minKey, keys, width int
}

func (s *DenseSpec) key() slabKey {
	return slabKey{minKey: s.MinKey, keys: s.Keys, width: s.Width}
}

// denseSlab is one map task's flat shuffle payload: value rows packed into a
// single []float64 in first-touch order, with a per-slot offset table in
// place of a map. Slabs are pooled on the engine and reused across jobs and
// EM iterations; data handed out through Reduce stays valid until the next
// Run checks the slab out again.
type denseSlab struct {
	spec    *DenseSpec
	data    []float64 // packed value rows, first-touch order
	off     []int32   // per slot: row offset into data, -1 if untouched
	n       []int32   // per slot: logical row length
	touched []int32   // touched slots in first-touch order
	total   int       // float capacity if every slot were touched (growth bound)
	bytes   int64     // modeled wire size, maintained at first emit
	dig     cluster.PayloadDigest
}

// prepare readies the slab for a fresh Run under spec. Same-spec reuse (the
// steady state of a fit loop holding one spec per job) only rewinds the
// touched slots; a different spec of the same shape rebuilds the offset
// table but keeps the storage.
func (s *denseSlab) prepare(spec *DenseSpec) {
	if s.spec == spec && len(s.off) == spec.Keys {
		s.reset()
		return
	}
	s.spec = spec
	s.total = spec.Keys * spec.Width
	for k, w := range spec.WideKeys {
		if slot := k - spec.MinKey; slot >= 0 && slot < spec.Keys {
			s.total += w - spec.Width
		}
	}
	s.data = s.data[:0]
	s.touched = s.touched[:0]
	if cap(s.off) < spec.Keys {
		s.off = make([]int32, spec.Keys)
		s.n = make([]int32, spec.Keys)
	}
	s.off = s.off[:spec.Keys]
	s.n = s.n[:spec.Keys]
	for i := range s.off {
		s.off[i] = -1
	}
	s.bytes = 0
	s.dig.Reset()
}

// reset rewinds the slab for a retry of a failed attempt (or the next Run's
// first attempt): only the touched slots are cleared, so a warm slab resets
// in O(touched) with zero allocations.
func (s *denseSlab) reset() {
	for _, slot := range s.touched {
		s.off[slot] = -1
	}
	s.touched = s.touched[:0]
	s.data = s.data[:0]
	s.bytes = 0
	s.dig.Reset()
}

// claim reserves a width-long row for slot and returns it for the first
// store. Rows pack in first-touch order, so slab memory scales with the keys
// a task actually emits, not with the full key space. The region is not
// zeroed: the store overwrites all of it, and nothing reads beyond the
// logical length. Growth is 4× but capped at the spec's total float count —
// a slab whose spec fits entirely under the first allocation (e.g. a
// single-scalar job) allocates exactly once and never grows again.
func (s *denseSlab) claim(slot, width int) []float64 {
	o := len(s.data)
	if cap(s.data) < o+width {
		c := min(max(4*cap(s.data), o+width, 64), s.total)
		if c < o+width { // spec changed shape under pooling; never under-size
			c = o + width
		}
		grown := make([]float64, o, c)
		copy(grown, s.data)
		s.data = grown
	}
	s.data = s.data[:o+width]
	s.off[slot] = int32(o)
	s.touched = append(s.touched, int32(slot))
	return s.data[o : o+width]
}

// row returns slot's stored logical row, or nil when untouched.
func (s *denseSlab) row(slot int) []float64 {
	o := s.off[slot]
	if o < 0 {
		return nil
	}
	return s.data[o : int(o)+int(s.n[slot])]
}

// slabsFor checks out splits prepared slabs for a dense job, reusing pooled
// storage shape-for-shape.
func (e *Engine) slabsFor(spec *DenseSpec, splits int) []*denseSlab {
	key := spec.key()
	e.mu.Lock()
	free := e.slabs[key]
	take := len(free)
	if take > splits {
		take = splits
	}
	slabs := make([]*denseSlab, splits)
	copy(slabs, free[len(free)-take:])
	if take > 0 {
		e.slabs[key] = free[:len(free)-take]
	}
	e.mu.Unlock()
	miss := splits - take
	if miss > 0 {
		// Cold checkout: carve the missing slabs and their offset tables from
		// two batch allocations instead of 3×miss small ones.
		block := make([]denseSlab, miss)
		tables := make([]int32, 2*miss*spec.Keys)
		for i, j := 0, 0; i < splits; i++ {
			if slabs[i] == nil {
				s := &block[j]
				s.off = tables[:spec.Keys:spec.Keys]
				s.n = tables[spec.Keys : 2*spec.Keys : 2*spec.Keys]
				tables = tables[2*spec.Keys:]
				slabs[i] = s
				j++
			}
		}
	}
	for i := range slabs {
		slabs[i].prepare(spec)
	}
	return slabs
}

// putSlabs returns a Run's slabs to the pool. The data is not cleared — the
// job's result map may still alias it — so the previous Run's views go stale
// only when the next checkout rewinds the slab, which is the documented
// lifetime contract.
func (e *Engine) putSlabs(spec *DenseSpec, slabs []*denseSlab) {
	key := spec.key()
	e.mu.Lock()
	if e.slabs == nil {
		e.slabs = make(map[slabKey][]*denseSlab)
	}
	e.slabs[key] = append(e.slabs[key], slabs...)
	e.mu.Unlock()
}

// denseCodec adapts one value type onto flat slab rows without boxing.
type denseCodec[V any] struct {
	// width is the logical row length of a value.
	width func(v V) int
	// store writes v into a freshly claimed row of exactly width(v) words.
	store func(dst []float64, v V)
	// view reconstructs the value from a stored logical row.
	view func(row []float64) V
	// merge folds a duplicate emit into the stored row via the job's
	// Combine, keeping the stored length (so the incremental digest and byte
	// accounting stay valid).
	merge func(dst []float64, v V, combine func(a, b V) V)
}

// vecCodec lays []float64 values out as slab rows directly.
var vecCodec = denseCodec[[]float64]{
	width: func(v []float64) int { return len(v) },
	store: func(dst, v []float64) { copy(dst, v) },
	view:  func(row []float64) []float64 { return row[:len(row):len(row)] },
	merge: func(dst, v []float64, combine func(a, b []float64) []float64) {
		merged := combine(dst, v)
		if len(merged) != len(dst) {
			panic("mapred: dense Combine changed the value length")
		}
		if len(merged) > 0 && &merged[0] != &dst[0] {
			copy(dst, merged)
		}
	},
}

// scalarCodec packs float64 values one word per row.
var scalarCodec = denseCodec[float64]{
	width: func(float64) int { return 1 },
	store: func(dst []float64, v float64) { dst[0] = v },
	view:  func(row []float64) float64 { return row[0] },
	merge: func(dst []float64, v float64, combine func(a, b float64) float64) {
		dst[0] = combine(dst[0], v)
	},
}

// denseEmitter is the fast path's Emitter: emits land in the task's slab,
// with bytes and digest folded in at first emit. Steady state (warm slab,
// in-range keys) performs zero allocations per emit.
type denseEmitter[V any] struct {
	name    string
	slab    *denseSlab
	combine func(a, b V) V
	cd      denseCodec[V]
	kb      func(int) int64
	vb      func(V) int64
	ops     int64
}

func (em *denseEmitter[V]) AddOps(n int64) { em.ops += n }

// reset rewinds a failed attempt so the retry reuses the slab in place.
func (em *denseEmitter[V]) reset() {
	em.slab.reset()
	em.ops = 0
}

func (em *denseEmitter[V]) Emit(k int, v V) {
	s := em.slab
	spec := s.spec
	slot := k - spec.MinKey
	if slot < 0 || slot >= spec.Keys {
		panic(fmt.Sprintf("mapred: job %q emitted key %d outside its DenseSpec range [%d,%d)",
			em.name, k, spec.MinKey, spec.MinKey+spec.Keys))
	}
	if o := s.off[slot]; o >= 0 {
		if em.combine == nil {
			panic(fmt.Sprintf("mapred: job %q emitted key %d twice in one task without a Combine",
				em.name, k))
		}
		em.cd.merge(s.data[o:int(o)+int(s.n[slot])], v, em.combine)
		return
	}
	w := em.cd.width(v)
	if maxW := spec.widthOf(slot); w > maxW {
		panic(fmt.Sprintf("mapred: job %q emitted a width-%d value for key %d; DenseSpec allows %d",
			em.name, w, k, maxW))
	}
	row := s.claim(slot, w)
	em.cd.store(row, v)
	s.n[slot] = int32(w)
	kb, vb := em.kb(k), em.vb(em.cd.view(row))
	s.bytes += kb + vb
	s.dig.Add(kb, vb)
}

// slabPayload recomputes a slab's modeled wire size and digest by walking
// its touched slots — the consume-side verification mirroring payloadSize on
// the generic path. Walk order is first-touch order, which is fine: the
// digest is order-independent by construction.
func slabPayload[V any](s *denseSlab, kbf func(int) int64, vbf func(V) int64, cd denseCodec[V]) (int64, uint64) {
	var total int64
	var dig cluster.PayloadDigest
	for _, slot := range s.touched {
		kb := kbf(int(slot) + s.spec.MinKey)
		vb := vbf(cd.view(s.row(int(slot))))
		total += kb + vb
		dig.Add(kb, vb)
	}
	return total, dig.Sum()
}

// denseKeyLess orders int keys exactly as the generic path's fmt.Sprint
// string sort does, without allocating: strconv formats both keys into stack
// buffers and bytes.Compare orders them. Reduce-task partitioning derives
// from this order, so under a FaultPlan the per-(task, attempt) fault draws
// — and hence every recovery charge — only match the generic path if the
// order matches exactly.
func denseKeyLess(a, b int) bool {
	var ab, bb [20]byte
	as := strconv.AppendInt(ab[:0], int64(a), 10)
	bs := strconv.AppendInt(bb[:0], int64(b), 10)
	return bytes.Compare(as, bs) < 0
}

// runDense is Run's flat-slab fast path. Control flow, phase accounting,
// trace spans, and every fault/corruption decision mirror the generic path
// exactly — the differential tests pin Metrics equality — while the shuffle
// state lives in pooled slabs instead of maps.
func runDense[I, V any](e *Engine, job *Job[I, int, V, V], input []I, cd denseCodec[V]) (map[int]V, error) {
	spec := job.Dense
	if spec.Keys <= 0 || spec.Width <= 0 {
		return nil, fmt.Errorf("mapred: job %q has an invalid DenseSpec (Keys=%d, Width=%d)",
			job.Name, spec.Keys, spec.Width)
	}
	// Entry poll, before the job draws its sequence number: an interrupted
	// run must not advance the fault cursor for a job it never starts.
	if err := e.Cluster.Interrupted(); err != nil {
		return nil, fmt.Errorf("mapred: job %q: %w", job.Name, err)
	}
	splits := e.NumSplits(len(input))
	plan, seq := e.plan()
	mapPhase := fmt.Sprintf("%s#%d/map", job.Name, seq)
	maxAtt := plan.Attempts(e.MaxAttempts)
	kbf, vbf := job.sizeFns()
	rbf := job.resultFn()

	tr := e.Cluster.Tracer()
	if tr != nil {
		tr.Begin(job.Name, trace.KindJob,
			trace.I("seq", int64(seq)), trace.I("splits", int64(splits)))
	}

	// ---- Map phase ----
	type taskOut struct {
		ops    int64
		att    int    // 1-based attempt that committed this output
		bytes  int64  // modeled wire size of the output
		digest uint64 // checksum stamped by the committing attempt
	}
	outs := make([]taskOut, splits)
	mapFaults := make([]taskFaults, splits)
	var inputBytes int64
	if job.InputBytes != nil {
		for _, rec := range input {
			inputBytes += job.InputBytes(rec)
		}
	}
	slabs := e.slabsFor(spec, splits)
	defer e.putSlabs(spec, slabs)

	// Worker-pool execution: a bounded set of workers pulls task indices from
	// an atomic counter instead of spawning one goroutine per task, and the
	// per-task emitters live in one batch allocation. Fault draws are keyed by
	// (phase, task, attempt), so dynamic task-to-worker assignment cannot
	// change any simulated-time charge.
	ems := make([]denseEmitter[V], splits)
	var wg sync.WaitGroup
	workers := e.Cluster.TotalCores()
	if splits < workers {
		workers = splits
	}
	var nextTask atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task := int(nextTask.Add(1)) - 1
				if task >= splits {
					return
				}
				lo := task * len(input) / splits
				hi := (task + 1) * len(input) / splits
				tf := &mapFaults[task]
				em := &ems[task]
				*em = denseEmitter[V]{
					name: job.Name, slab: slabs[task], combine: job.Combine,
					cd: cd, kb: kbf, vb: vbf,
				}
				committed := false
				for att := 1; att <= maxAtt && !committed; att++ {
					if att > 1 {
						em.reset() // retries rewind the slab in place
					}
					m := job.NewMapper(task)
					for i := lo; i < hi; i++ {
						m.Map(input[i], em)
					}
					m.Cleanup(em)
					if plan.AttemptFails(mapPhase, task, att) {
						tf.failed++
						tf.wasted += em.ops
						continue
					}
					outs[task] = taskOut{
						ops: em.ops, att: att,
						bytes: em.slab.bytes, digest: em.slab.dig.Sum(),
					}
					tf.chargeStraggler(plan, mapPhase, task, att, em.ops)
					committed = true
				}
				if !committed {
					tf.exhausted = true
				}
			}
		}()
	}
	wg.Wait()

	// Node-loss semantics, identical to the generic path: completed map
	// outputs on a lost node are charged as re-executed.
	if plan.Enabled() {
		nodes := e.Cluster.Config().Nodes
		for n := 0; n < nodes; n++ {
			if !plan.NodeLost(mapPhase, n) {
				continue
			}
			for t := n; t < splits; t += nodes {
				if mapFaults[t].exhausted {
					continue
				}
				mapFaults[t].failed++
				mapFaults[t].wasted += outs[t].ops
			}
		}
	}

	var mapOps int64
	mapStats := cluster.PhaseStats{
		Name:    job.Name + "/map",
		Tasks:   int64(splits),
		Records: int64(len(input)),
	}
	sumFaults(&mapStats, mapFaults)
	for t := range outs {
		mapOps += outs[t].ops
	}
	for t := range mapFaults {
		if mapFaults[t].exhausted {
			mapStats.ComputeOps = mapOps
			e.Cluster.RunPhase(mapStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q map task %d (%d attempts)",
				ErrTaskFailed, job.Name, t, maxAtt)
		}
	}

	// ---- Shuffle: verify each slab's checksum and collect the key set ----
	var shuffleBytes int64
	seen := make([]bool, spec.Keys)
	nKeys := 0
	for t := range outs {
		o := &outs[t]
		tb, sum := slabPayload(slabs[t], kbf, vbf, cd)
		if tb != o.bytes || sum != o.digest {
			mapStats.ComputeOps = mapOps
			mapStats.CorruptPayloads++
			e.Cluster.RunPhase(mapStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q map task %d shuffle payload",
				ErrCorruptPayload, job.Name, t)
		}
		if !chargeCorruptFetches(&mapStats, plan, mapPhase, t, o.att, maxAtt, o.ops, tb) {
			mapStats.ComputeOps = mapOps
			e.Cluster.RunPhase(mapStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q map task %d payload corrupt after %d re-fetches",
				ErrCorruptPayload, job.Name, t, maxAtt)
		}
		shuffleBytes += tb
		for _, slot := range slabs[t].touched {
			if !seen[slot] {
				seen[slot] = true
				nKeys++
			}
		}
	}
	mapStats.ComputeOps = mapOps
	mapStats.ShuffleBytes = shuffleBytes
	mapStats.DiskBytes = inputBytes + shuffleBytes
	e.Cluster.RunPhase(mapStats)

	// Boundary poll between the fully charged map phase and the reduce phase,
	// mirroring the generic path: metrics and trace stay consistent because
	// the map charge above committed before the poll.
	if err := e.Cluster.Interrupted(); err != nil {
		if tr != nil {
			tr.End(trace.I("failed", 1))
		}
		return nil, fmt.Errorf("mapred: job %q: %w", job.Name, err)
	}

	// ---- Reduce phase ----
	reducers := e.Reducers
	if reducers <= 0 {
		reducers = e.Cluster.TotalCores()
	}
	keys := make([]int, 0, nKeys)
	for slot, ok := range seen {
		if ok {
			keys = append(keys, spec.MinKey+slot)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return denseKeyLess(keys[i], keys[j]) })

	redTasks := reducers
	if len(keys) < redTasks {
		redTasks = len(keys)
	}
	if redTasks == 0 {
		redTasks = 1
	}
	redPhase := fmt.Sprintf("%s#%d/reduce", job.Name, seq)
	result := make(map[int]V, len(keys))
	var resMu sync.Mutex
	var redOps, outBytes int64
	type redOut struct {
		att    int
		ops    int64
		bytes  int64
		digest uint64
	}
	redOuts := make([]redOut, redTasks)
	redFaults := make([]taskFaults, redTasks)
	redOcs := make([]opsCounter, redTasks)
	// One gather buffer per reduce task, carved from a single arena.
	valsArena := make([]V, redTasks*len(slabs))
	var redWg sync.WaitGroup
	slots := reducers
	if tc := e.Cluster.TotalCores(); tc < slots {
		slots = tc
	}
	if redTasks < slots {
		slots = redTasks
	}
	var nextRed atomic.Int64
	for w := 0; w < slots; w++ {
		redWg.Add(1)
		go func() {
			defer redWg.Done()
			for {
				task := int(nextRed.Add(1)) - 1
				if task >= redTasks {
					return
				}
				lo := task * len(keys) / redTasks
				hi := (task + 1) * len(keys) / redTasks
				taskKeys := keys[lo:hi]
				tf := &redFaults[task]
				// Per-key value gather, in map-task order (the same order the
				// generic shuffle builds its groups in), reused across keys.
				vals := valsArena[task*len(slabs) : task*len(slabs) : (task+1)*len(slabs)]
				committed := false
				for att := 1; att <= maxAtt && !committed; att++ {
					oc := &redOcs[task]
					oc.n = 0
					var taskBytes int64
					var dig cluster.PayloadDigest
					partial := make(map[int]V, len(taskKeys))
					for _, k := range taskKeys {
						slot := k - spec.MinKey
						vals = vals[:0]
						for _, s := range slabs {
							if row := s.row(slot); row != nil {
								vals = append(vals, cd.view(row))
							}
						}
						r := job.Reduce(k, vals, oc)
						kb, rb := kbf(k), rbf(r)
						taskBytes += rb
						dig.Add(kb, rb)
						partial[k] = r
					}
					if plan.AttemptFails(redPhase, task, att) {
						tf.failed++
						tf.wasted += oc.n
						continue
					}
					tf.chargeStraggler(plan, redPhase, task, att, oc.n)
					resMu.Lock()
					for k, r := range partial {
						result[k] = r
					}
					redOps += oc.n
					outBytes += taskBytes
					resMu.Unlock()
					redOuts[task] = redOut{att: att, ops: oc.n, bytes: taskBytes, digest: dig.Sum()}
					committed = true
				}
				if !committed {
					tf.exhausted = true
				}
			}
		}()
	}
	redWg.Wait()
	redStats := cluster.PhaseStats{
		Name:              job.Name + "/reduce",
		ComputeOps:        redOps,
		DiskBytes:         outBytes,
		Tasks:             int64(redTasks),
		MaterializedBytes: outBytes,
	}
	sumFaults(&redStats, redFaults)
	for t := range redFaults {
		if redFaults[t].exhausted {
			redStats.DiskBytes = 0 // aborted job commits no output
			redStats.MaterializedBytes = 0
			e.Cluster.RunPhase(redStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q reduce task %d (%d attempts)",
				ErrTaskFailed, job.Name, t, maxAtt)
		}
	}
	// Driver-consume verification of the reduce part files, mirroring the
	// generic path.
	for t := 0; t < redTasks; t++ {
		lo := t * len(keys) / redTasks
		hi := (t + 1) * len(keys) / redTasks
		var tb int64
		var dig cluster.PayloadDigest
		for _, k := range keys[lo:hi] {
			kb, rb := kbf(k), rbf(result[k])
			tb += rb
			dig.Add(kb, rb)
		}
		if tb != redOuts[t].bytes || dig.Sum() != redOuts[t].digest {
			redStats.CorruptPayloads++
			e.Cluster.RunPhase(redStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q reduce task %d output",
				ErrCorruptPayload, job.Name, t)
		}
		if !chargeCorruptFetches(&redStats, plan, redPhase, t, redOuts[t].att, maxAtt, redOuts[t].ops, tb) {
			e.Cluster.RunPhase(redStats)
			if tr != nil {
				tr.End(trace.I("failed", 1))
			}
			return nil, fmt.Errorf("%w: job %q reduce task %d output corrupt after %d re-fetches",
				ErrCorruptPayload, job.Name, t, maxAtt)
		}
	}
	e.Cluster.RunPhase(redStats)
	if tr != nil {
		tr.End(trace.I("reducers", int64(redTasks)), trace.I("shuffle_bytes", shuffleBytes))
	}
	return result, nil
}
