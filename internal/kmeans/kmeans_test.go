package kmeans

import (
	"testing"

	"spca/internal/matrix"
)

// threeBlobs builds three well-separated Gaussian clusters.
func threeBlobs(perCluster int, seed uint64) (*matrix.Dense, []int) {
	rng := matrix.NewRNG(seed)
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	x := matrix.NewDense(3*perCluster, 2)
	truth := make([]int, 3*perCluster)
	for c, ctr := range centers {
		for i := 0; i < perCluster; i++ {
			r := c*perCluster + i
			x.Set(r, 0, ctr[0]+rng.NormFloat64())
			x.Set(r, 1, ctr[1]+rng.NormFloat64())
			truth[r] = c
		}
	}
	return x, truth
}

func TestFitSeparatesBlobs(t *testing.T) {
	x, truth := threeBlobs(50, 1)
	res, err := Fit(x, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	// Each true cluster should be internally consistent in the assignment.
	for c := 0; c < 3; c++ {
		first := res.Assign[c*50]
		for i := 0; i < 50; i++ {
			if res.Assign[c*50+i] != first {
				t.Fatalf("true cluster %d split (row %d)", c, c*50+i)
			}
		}
		_ = truth
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia = %v", res.Inertia)
	}
	if res.Iterations <= 0 || res.Iterations > 50 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestFitValidation(t *testing.T) {
	x := matrix.NewDense(3, 2)
	if _, err := Fit(x, DefaultOptions(0)); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := Fit(x, DefaultOptions(5)); err == nil {
		t.Fatal("expected error for K > rows")
	}
}

func TestFitDeterministic(t *testing.T) {
	x, _ := threeBlobs(30, 2)
	a, err := Fit(x, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(x, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("kmeans not deterministic")
		}
	}
}

func TestFitKEqualsN(t *testing.T) {
	x, _ := threeBlobs(1, 3) // 3 rows
	res, err := Fit(x, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	// Every point in its own cluster: inertia ~ 0.
	if res.Inertia > 1e-9 {
		t.Fatalf("inertia = %v", res.Inertia)
	}
}

func TestInertiaDecreasesWithMoreClusters(t *testing.T) {
	x, _ := threeBlobs(40, 4)
	r1, err := Fit(x, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Fit(x, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Inertia >= r1.Inertia {
		t.Fatalf("k=3 inertia %v >= k=1 inertia %v", r3.Inertia, r1.Inertia)
	}
}
