// Package kmeans is a small k-means implementation (k-means++ seeding,
// Lloyd iterations). The paper motivates PCA as a preprocessing step for
// clustering algorithms that struggle with high-dimensional data (§1, §2.1);
// the imagefeatures example uses this package to close that loop.
package kmeans

import (
	"errors"
	"math"

	"spca/internal/matrix"
)

// Options configures a clustering run.
type Options struct {
	K       int
	MaxIter int
	Tol     float64 // relative decrease of the objective that counts as converged
	Seed    uint64
}

// DefaultOptions returns sensible defaults for k clusters.
func DefaultOptions(k int) Options {
	return Options{K: k, MaxIter: 50, Tol: 1e-4, Seed: 1}
}

// Result is the output of Fit.
type Result struct {
	// Centers holds the k cluster centroids as rows.
	Centers *matrix.Dense
	// Assign maps each input row to its cluster.
	Assign []int
	// Inertia is the final sum of squared distances to assigned centers.
	Inertia float64
	// Iterations actually executed.
	Iterations int
}

// Fit clusters the rows of x.
func Fit(x *matrix.Dense, opt Options) (*Result, error) {
	n, dims := x.Dims()
	if opt.K <= 0 {
		return nil, errors.New("kmeans: K must be positive")
	}
	if n < opt.K {
		return nil, errors.New("kmeans: fewer rows than clusters")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 50
	}
	rng := matrix.NewRNG(opt.Seed + 0x4B4D)
	centers := seedPlusPlus(x, opt.K, rng)

	assign := make([]int, n)
	counts := make([]int, opt.K)
	prevInertia := math.Inf(1)
	var inertia float64
	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		// Assignment step.
		inertia = 0
		for i := 0; i < n; i++ {
			row := x.Row(i)
			best, bestDist := 0, math.Inf(1)
			for c := 0; c < opt.K; c++ {
				d := sqDist(row, centers.Row(c))
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			assign[i] = best
			inertia += bestDist
		}
		// Update step.
		next := matrix.NewDense(opt.K, dims)
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			matrix.AXPY(1, x.Row(i), next.Row(c))
		}
		for c := 0; c < opt.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random row.
				copy(next.Row(c), x.Row(rng.Intn(n)))
				continue
			}
			matrix.VecScale(1/float64(counts[c]), next.Row(c))
		}
		centers = next
		if !math.IsInf(prevInertia, 1) && prevInertia-inertia <= opt.Tol*prevInertia {
			iter++
			break
		}
		prevInertia = inertia
	}
	return &Result{Centers: centers, Assign: assign, Inertia: inertia, Iterations: iter}, nil
}

// seedPlusPlus picks initial centers with the k-means++ scheme.
func seedPlusPlus(x *matrix.Dense, k int, rng *matrix.RNG) *matrix.Dense {
	n, dims := x.Dims()
	centers := matrix.NewDense(k, dims)
	copy(centers.Row(0), x.Row(rng.Intn(n)))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(x.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dist {
			total += d
		}
		pick := 0
		if total > 0 {
			target := rng.Float64() * total
			var cum float64
			for i, d := range dist {
				cum += d
				if cum >= target {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(n)
		}
		copy(centers.Row(c), x.Row(pick))
		for i := range dist {
			if d := sqDist(x.Row(i), centers.Row(c)); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
