// Package covpca implements the MLlib-PCA baseline (§2.1): compute the D x D
// Gramian/covariance matrix with one distributed pass (Chu et al.'s one-pass
// scheme, which MLlib's RowMatrix uses), pull it into the driver's memory,
// and eigendecompose it there. The driver-side D x D allocation goes through
// the simulated cluster's driver-memory accounting, so the algorithm fails
// with cluster.ErrDriverOOM beyond a dimensionality threshold — reproducing
// the paper's observation that MLlib-PCA cannot process more than ~6,000
// columns on a 32 GB machine (Table 2, Figures 7-8).
package covpca

import (
	"errors"
	"fmt"

	"spca/internal/cluster"
	"spca/internal/mapred"
	"spca/internal/matrix"
	"spca/internal/parallel"
	"spca/internal/rdd"
	"spca/internal/trace"
)

// Options configures an MLlib-PCA-style run.
type Options struct {
	// Components is d, the number of principal components.
	Components int
	// SampleRows bounds the error-metric sample (default 256).
	SampleRows int
	// Seed drives the error-metric row sample (the algorithm itself is
	// deterministic).
	Seed uint64
	// Tracer, when non-nil, receives fit/action/phase spans for the run.
	// The nil default disables tracing with zero overhead.
	Tracer *trace.Tracer
}

// DefaultOptions mirrors the paper's MLlib-PCA configuration.
func DefaultOptions(d int) Options {
	return Options{Components: d, SampleRows: 256, Seed: 42}
}

// Result is the output of a covariance-eigendecomposition PCA.
type Result struct {
	// Components holds the d principal directions as columns (D x d).
	Components *matrix.Dense
	// Eigenvalues are the corresponding covariance eigenvalues.
	Eigenvalues []float64
	// Err is the sampled relative 1-norm reconstruction error.
	Err     float64
	Metrics cluster.Metrics
	// Phases is the per-phase cost breakdown derived from the cluster's
	// phase log.
	Phases []cluster.PhaseSummary
}

// FitSpark runs MLlib-PCA on the Spark-like engine. It returns a wrapped
// cluster.ErrDriverOOM when the D x D covariance cannot fit in driver memory.
func FitSpark(ctx *rdd.Context, rows []matrix.SparseVector, dims int, opt Options) (*Result, error) {
	if opt.Components <= 0 {
		return nil, errors.New("covpca: Components must be positive")
	}
	if len(rows) == 0 {
		return nil, errors.New("covpca: empty input")
	}
	if opt.Components > dims {
		return nil, fmt.Errorf("covpca: Components %d exceeds dimensionality %d", opt.Components, dims)
	}
	cl := ctx.Cluster()
	n := len(rows)

	if tr := opt.Tracer; tr != nil {
		cl.SetTracer(tr)
		tr.Begin("FitCovPCA", trace.KindFit,
			trace.I("rows", int64(n)),
			trace.I("dims", int64(dims)),
			trace.I("components", int64(opt.Components)))
		defer tr.End()
	}

	y := rdd.Parallelize(ctx, "Y", rows, mapred.BytesOfSparseVec)
	y.Persist()
	defer y.Unpersist()

	// One-pass Gramian G = YᵀY via treeAggregate. Every partition builds a
	// D x D dense partial (this is MLlib's communication pattern: partials
	// are D² no matter how sparse the data), and the final result must fit
	// in the driver.
	gram, err := rdd.Aggregate(y, "gramian",
		func() *matrix.Dense { return matrix.NewDense(dims, dims) },
		func(acc *matrix.Dense, row matrix.SparseVector, ops *rdd.TaskOps) *matrix.Dense {
			// Sparse rank-1 update (MLlib's spr): nnz² multiply-adds.
			for a, ja := range row.Indices {
				va := row.Values[a]
				r := acc.Row(ja)
				for b, jb := range row.Indices {
					r[jb] += va * row.Values[b]
				}
			}
			ops.AddOps(int64(row.NNZ() * row.NNZ()))
			return acc
		},
		func(a, b *matrix.Dense) *matrix.Dense { a.AddInPlace(b); return a },
		mapred.BytesOfDense,
	)
	if err != nil {
		return nil, fmt.Errorf("covpca: %w", err)
	}
	gramBytes := mapred.BytesOfDense(gram)
	defer cl.FreeDriver(gramBytes)

	// Column means (cheap second pass, as RowMatrix.computeColumnSummary).
	meanAgg, err := rdd.Aggregate(y, "colmeans",
		func() []float64 { return make([]float64, dims) },
		func(acc []float64, row matrix.SparseVector, ops *rdd.TaskOps) []float64 {
			for k, j := range row.Indices {
				acc[j] += row.Values[k]
			}
			ops.AddOps(int64(row.NNZ()))
			return acc
		},
		func(a, b []float64) []float64 { matrix.AXPY(1, b, a); return a },
		mapred.BytesOfVec,
	)
	if err != nil {
		return nil, fmt.Errorf("covpca: %w", err)
	}
	defer cl.FreeDriver(mapred.BytesOfVec(meanAgg))
	mean := meanAgg
	matrix.VecScale(1/float64(n), mean)

	// Covariance from the Gramian on the driver:
	// Cov = (G - N·m·mᵀ) / (N-1). Dense D² work.
	denom := float64(n - 1)
	if n == 1 {
		denom = 1
	}
	// The Gramian is not read again after this step, so the covariance
	// densify runs in place on its buffer instead of on a clone. The
	// simulated MLlib driver still holds two D x D matrices at this point
	// (Gramian + covariance), so the second allocation stays charged below.
	cov := gram
	// Rows of the covariance are independent, so the densify loop runs on
	// the parallel pool (each element computed exactly as before).
	parallel.For(dims, 4096/(dims+1)+1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := cov.Row(i)
			mi := mean[i]
			for j := 0; j < dims; j++ {
				r[j] = (r[j] - float64(n)*mi*mean[j]) / denom
			}
		}
	})
	// A second D x D matrix lives in the driver during this step.
	if err := cl.AllocDriver(gramBytes); err != nil {
		return nil, fmt.Errorf("covpca: covariance buffer: %w", err)
	}
	defer cl.FreeDriver(gramBytes)
	d3 := int64(dims) * int64(dims) * int64(dims)
	cl.AddDriverCompute(int64(dims)*int64(dims) + d3) // densify + full eigendecomposition

	// Eigendecomposition of the covariance. MLlib runs a full dense
	// decomposition (charged above as D³); numerically we extract the top-d
	// eigenpairs with Lanczos on the same matrix, which yields the same
	// components without the cubic wall-clock in this process.
	comps, vals := topEigenSym(cov, opt.Components, opt.Seed)

	ymat := sparseFromRows(rows, dims)
	sample := sampleIdx(n, opt.sampleRows(), opt.Seed)
	res := &Result{
		Components:  comps,
		Eigenvalues: vals,
		Err:         reconstructionError(ymat, mean, comps, sample),
	}
	res.Metrics = cl.Metrics()
	res.Phases = cluster.Summarize(cl.PhaseLog(), cl.Config())
	if tr := opt.Tracer; tr != nil {
		// The pipeline is single-pass; report it as one logical iteration so
		// observers see the same shape as the iterative algorithms.
		tr.IterationDone(trace.Iteration{Iter: 1, Err: res.Err, SimSeconds: res.Metrics.SimSeconds})
	}
	return res, nil
}

// topEigenSym extracts the top-k eigenpairs of a symmetric PSD matrix.
func topEigenSym(a *matrix.Dense, k int, seed uint64) (*matrix.Dense, []float64) {
	steps := 3*k + 20
	u, s, _ := matrix.LanczosSVD(matrix.DenseOp{M: a}, k, steps, matrix.NewRNG(seed+0xE16))
	return u, s
}

func (o Options) sampleRows() int {
	if o.SampleRows <= 0 {
		return 256
	}
	return o.SampleRows
}

// reconstructionError matches the metric used by the other algorithms.
func reconstructionError(y *matrix.Sparse, mean []float64, w *matrix.Dense, rows []int) float64 {
	var num, den float64
	k := w.C
	xi := make([]float64, k)
	wm := w.MulVecT(mean)
	tNum := make([]float64, y.C)
	tDen := make([]float64, y.C)
	for _, i := range rows {
		row := y.Row(i)
		for t := range xi {
			xi[t] = -wm[t]
		}
		for t, j := range row.Indices {
			matrix.AXPY(row.Values[t], w.Row(j), xi)
		}
		matrix.ReconTerms(row, mean, w, xi, tNum, tDen)
		for j := 0; j < y.C; j++ {
			num += tNum[j]
			den += tDen[j]
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func sampleIdx(n, want int, seed uint64) []int {
	if want >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	perm := matrix.NewRNG(seed + 0xACC).Perm(n)
	idx := perm[:want]
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

func sparseFromRows(rows []matrix.SparseVector, dims int) *matrix.Sparse {
	b := matrix.NewSparseBuilder(dims)
	for _, r := range rows {
		b.AddRow(r.Indices, r.Values)
	}
	return b.Build()
}
