package covpca

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"testing"
)

// fingerprint hashes the exact float64 bits of a fitted model so the
// scratch-reuse refactor can prove bit-identity to the pre-change tree.
func fingerprint(res *Result) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, v := range res.Components.Data {
		put(v)
	}
	for _, v := range res.Eigenvalues {
		put(v)
	}
	put(res.Err)
	put(res.Metrics.SimSeconds)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Pre-refactor fingerprint; when empty the test prints the observed hash so
// it can be pinned.
var goldenHash = "1b0d8bf60de53686"

func TestGoldenFitBitIdentical(t *testing.T) {
	_, rows := plantedData(150, 40, 3, 41)
	res, err := FitSpark(testCtx(), rows, 40, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	got := fingerprint(res)
	if goldenHash == "" {
		t.Fatalf("no golden hash; captured %s", got)
	}
	if got != goldenHash {
		t.Fatalf("fit changed: fingerprint %s, golden %s", got, goldenHash)
	}
}
