package covpca

import (
	"errors"
	"testing"

	"spca/internal/cluster"
	"spca/internal/dataset"
	"spca/internal/matrix"
	"spca/internal/rdd"
)

func testCtx(mutate ...func(*cluster.Config)) *rdd.Context {
	cfg := cluster.DefaultConfig().WithTaskOverhead(0.05)
	for _, m := range mutate {
		m(&cfg)
	}
	return rdd.NewContext(cluster.MustNew(cfg))
}

func plantedData(n, dims, rank int, seed uint64) (*matrix.Sparse, []matrix.SparseVector) {
	y := dataset.MustGenerate(dataset.Spec{
		Kind: dataset.KindDiabetes, Rows: n, Cols: dims, Rank: rank, Seed: seed,
	})
	return y, dataset.Rows(y)
}

func TestCovPCAMatchesExactPCA(t *testing.T) {
	y, rows := plantedData(150, 40, 4, 41)
	res, err := FitSpark(testCtx(), rows, 40, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	mean := y.ColMeans()
	_, _, v := matrix.TopSVD(y.Dense().SubRowVec(mean), 4)
	if gap := matrix.SubspaceGap(res.Components, v); gap > 1e-6 {
		t.Fatalf("covariance PCA gap vs exact %v", gap)
	}
	// Eigenvalues descending and non-negative.
	for i, ev := range res.Eigenvalues {
		if ev < 0 {
			t.Fatalf("negative eigenvalue %v", ev)
		}
		if i > 0 && ev > res.Eigenvalues[i-1]+1e-9 {
			t.Fatalf("eigenvalues unsorted: %v", res.Eigenvalues)
		}
	}
	if res.Err <= 0 || res.Err > 1 {
		t.Fatalf("reconstruction error %v out of range", res.Err)
	}
}

func TestCovPCADriverOOMOnWideData(t *testing.T) {
	// D = 200 -> covariance is 200x200x8 = 320 KB; a gram + covariance
	// buffer need 640 KB. Limit the driver below that.
	_, rows := plantedData(50, 200, 4, 42)
	ctx := testCtx(func(c *cluster.Config) { c.DriverMemory = 500 << 10 })
	_, err := FitSpark(ctx, rows, 200, DefaultOptions(4))
	if !errors.Is(err, cluster.ErrDriverOOM) {
		t.Fatalf("expected driver OOM, got %v", err)
	}
}

func TestCovPCADriverMemoryQuadraticInD(t *testing.T) {
	// Figure 8's shape: peak driver memory grows ~4x when D doubles.
	peaks := map[int]int64{}
	for _, dims := range []int{50, 100} {
		_, rows := plantedData(60, dims, 4, 43)
		ctx := testCtx()
		if _, err := FitSpark(ctx, rows, dims, DefaultOptions(4)); err != nil {
			t.Fatal(err)
		}
		peaks[dims] = ctx.Cluster().Metrics().DriverPeak
	}
	ratio := float64(peaks[100]) / float64(peaks[50])
	if ratio < 3 || ratio > 5 {
		t.Fatalf("driver memory should scale ~quadratically: %v", peaks)
	}
}

func TestCovPCAValidation(t *testing.T) {
	_, rows := plantedData(20, 10, 2, 44)
	if _, err := FitSpark(testCtx(), rows, 10, DefaultOptions(0)); err == nil {
		t.Fatal("expected error for zero components")
	}
	if _, err := FitSpark(testCtx(), rows, 10, DefaultOptions(11)); err == nil {
		t.Fatal("expected error for d > D")
	}
	if _, err := FitSpark(testCtx(), nil, 10, DefaultOptions(2)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestCovPCAShuffleQuadraticInD(t *testing.T) {
	// Table 1's communication complexity O(D²): per-partition partials are
	// dense D x D regardless of sparsity.
	shuffles := map[int]int64{}
	for _, dims := range []int{40, 80} {
		_, rows := plantedData(100, dims, 4, 45)
		ctx := testCtx()
		if _, err := FitSpark(ctx, rows, dims, DefaultOptions(4)); err != nil {
			t.Fatal(err)
		}
		shuffles[dims] = ctx.Cluster().Metrics().ShuffleBytes
	}
	ratio := float64(shuffles[80]) / float64(shuffles[40])
	if ratio < 3 {
		t.Fatalf("shuffle should grow ~quadratically with D: %v", shuffles)
	}
}

func TestCovPCADeterministic(t *testing.T) {
	_, rows := plantedData(80, 30, 3, 46)
	a, err := FitSpark(testCtx(), rows, 30, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitSpark(testCtx(), rows, 30, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Components.MaxAbsDiff(b.Components) != 0 {
		t.Fatal("covpca not deterministic")
	}
}

func TestCovPCASingleRow(t *testing.T) {
	// n=1 exercises the denominator guard.
	b := matrix.NewSparseBuilder(5)
	b.AddRow([]int{0, 2}, []float64{1, 2})
	y := b.Build()
	rows := dataset.Rows(y)
	if _, err := FitSpark(testCtx(), rows, 5, DefaultOptions(1)); err != nil {
		t.Fatal(err)
	}
}
