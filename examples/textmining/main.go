// Textmining: the paper's motivating workload — principal components of a
// large sparse bag-of-words matrix (§1: "the principal components explain
// the principal terms in a set of documents"). This example:
//
//  1. builds a Bio-Text-like document/word matrix,
//  2. extracts principal "topics" with sPCA and prints each topic's top
//     terms,
//  3. races sPCA-MapReduce against Mahout-PCA to the same accuracy target,
//     reproducing the paper's accuracy-vs-time comparison (Figure 4), and
//  4. compares the intermediate data both algorithms shuffled.
package main

import (
	"fmt"
	"log"
	"sort"

	"spca"
)

func main() {
	y := spca.GenerateDataset(spca.DatasetSpec{
		Kind: spca.BioText,
		Rows: 4000,
		Cols: 800,
		Rank: 40, // plant 40 latent topics
		Seed: 7,
	})
	fmt.Printf("corpus: %d documents, %d terms, %d postings\n\n", y.R, y.C, y.NNZ())

	// --- 1. Principal topics with sPCA --------------------------------
	res, err := spca.Fit(y, spca.Config{
		Algorithm:      spca.SPCAMapReduce,
		Components:     5,
		TargetAccuracy: 0.95,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sPCA-MapReduce: %d iterations, %.1f simulated seconds\n\n",
		res.Iterations, res.Metrics.SimSeconds)
	for c := 0; c < res.Components.C; c++ {
		fmt.Printf("topic %d, top terms: %v\n", c+1, topTerms(res, c, 8))
	}

	// --- 2. The race against Mahout-PCA --------------------------------
	mahout, err := spca.Fit(y, spca.Config{
		Algorithm:      spca.MahoutPCA,
		Components:     5,
		TargetAccuracy: 0.95,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\naccuracy vs simulated time (the Figure 4 comparison):\n")
	fmt.Printf("%-18s %12s %12s\n", "", "time (s)", "accuracy")
	for _, h := range res.History {
		fmt.Printf("%-18s %12.1f %11.1f%%\n", "sPCA-MapReduce", h.SimSeconds, h.Accuracy*100)
	}
	for _, h := range mahout.History {
		fmt.Printf("%-18s %12.1f %11.1f%%\n", "Mahout-PCA", h.SimSeconds, h.Accuracy*100)
	}

	fmt.Printf("\nintermediate data shuffled:\n")
	fmt.Printf("  sPCA-MapReduce: %d bytes\n", res.Metrics.ShuffleBytes)
	fmt.Printf("  Mahout-PCA:     %d bytes (%.1fx more)\n",
		mahout.Metrics.ShuffleBytes,
		float64(mahout.Metrics.ShuffleBytes)/float64(res.Metrics.ShuffleBytes))
}

// topTerms returns the indices of the terms with the largest absolute
// loading on component c, formatted as termNNN.
func topTerms(res *spca.Result, c, n int) []string {
	type tl struct {
		term    int
		loading float64
	}
	all := make([]tl, res.Components.R)
	for t := 0; t < res.Components.R; t++ {
		l := res.Components.At(t, c)
		if l < 0 {
			l = -l
		}
		all[t] = tl{term: t, loading: l}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].loading > all[j].loading })
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf("term%03d", all[i].term)
	}
	return out
}
