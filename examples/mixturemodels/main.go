// Mixturemodels: the second PPCA property the paper highlights (§2.4) —
// "multiple PPCA models can be combined as a probabilistic mixture for
// better accuracy and to express complex models". The example builds data
// drawn from three different low-dimensional subspaces (three "document
// styles" sharing a vocabulary), shows that a single global PCA blurs them
// together, and fits a mixture of PPCA models that both clusters the rows
// and gives each cluster its own principal components.
package main

import (
	"fmt"
	"log"

	"spca"
	"spca/internal/matrix"
)

func main() {
	const (
		perCluster = 150
		dims       = 40
		localRank  = 3
	)
	y, truth := threeSubspaces(perCluster, dims, localRank, 21)
	fmt.Printf("data: %d rows x %d dims, drawn from 3 planted subspaces\n\n", y.R, dims)

	// --- A single global PPCA (what plain sPCA would fit) ---------------
	single, err := spca.FitMixture(y, spca.DefaultMixtureOptions(1, 3*localRank))
	if err != nil {
		log.Fatal(err)
	}

	// --- A mixture of three local PPCA models ---------------------------
	mix, err := spca.FitMixture(y, spca.DefaultMixtureOptions(3, localRank))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("single PPCA (d=%d):    final log-likelihood %.0f\n",
		3*localRank, last(single.LogLikelihood))
	fmt.Printf("mixture of 3 (d=%d ea): final log-likelihood %.0f  (higher is better)\n\n",
		localRank, last(mix.LogLikelihood))

	// How well did the mixture recover the planted clusters?
	assign := mix.Assign()
	fmt.Printf("mixture weights: %v\n", rounded(mix.Weights))
	fmt.Printf("cluster recovery (pairwise agreement with ground truth): %.1f%%\n",
		100*pairAgreement(truth, assign))

	// Each recovered model has its own principal directions.
	for m, c := range mix.Components {
		fmt.Printf("model %d: %d x %d loading matrix, noise variance %.4f\n",
			m+1, c.R, c.C, mix.Variances[m])
	}
}

// threeSubspaces draws rows from three distinct low-rank Gaussian models.
func threeSubspaces(perCluster, dims, rank int, seed uint64) (*spca.Dense, []int) {
	rng := matrix.NewRNG(seed)
	y := matrix.NewDense(3*perCluster, dims)
	truth := make([]int, 3*perCluster)
	for c := 0; c < 3; c++ {
		basis := matrix.NormRnd(rng, dims, rank)
		center := make([]float64, dims)
		for j := range center {
			center[j] = 8*float64(c) + rng.NormFloat64()
		}
		for i := 0; i < perCluster; i++ {
			r := c*perCluster + i
			truth[r] = c
			row := y.Row(r)
			copy(row, center)
			for b := 0; b < rank; b++ {
				matrix.AXPY(rng.NormFloat64(), basis.Col(b), row)
			}
			for j := range row {
				row[j] += 0.2 * rng.NormFloat64()
			}
		}
	}
	return y, truth
}

// pairAgreement is the fraction of row pairs on which two clusterings agree
// about same-cluster vs different-cluster (label-permutation invariant).
func pairAgreement(a, b []int) float64 {
	var agree, total float64
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j += 7 { // strided sample of pairs
			total++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
		}
	}
	return agree / total
}

func last(v []float64) float64 { return v[len(v)-1] }

func rounded(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*100)) / 100
	}
	return out
}
