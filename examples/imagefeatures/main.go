// Imagefeatures: PCA as a dimensionality-reduction step before clustering —
// the workload the paper's introduction motivates ("since PCA reduces the
// dimensionality of the data, it is a key step in many other machine
// learning algorithms that do not perform well with high-dimensional data
// such as k-means clustering").
//
// The example builds an Images-like matrix of dense SIFT-style feature
// vectors (a mixture of visual-word clusters), reduces it from 128 to 8
// dimensions with sPCA, and clusters the reduced vectors with k-means,
// comparing cluster quality and cost against clustering the raw vectors.
package main

import (
	"fmt"
	"log"

	"spca"
	"spca/internal/kmeans"
	"spca/internal/matrix"
)

func main() {
	const (
		nVectors = 6000
		dims     = 128
		clusters = 8
	)
	y := spca.GenerateDataset(spca.DatasetSpec{
		Kind: spca.Images,
		Rows: nVectors,
		Cols: dims,
		Rank: clusters, // plant 8 visual-word clusters
		Seed: 3,
	})
	fmt.Printf("features: %d vectors x %d dimensions\n\n", y.R, y.C)

	// --- PCA: 128 -> 8 dimensions --------------------------------------
	res, err := spca.Fit(y, spca.Config{
		Algorithm:      spca.SPCASpark,
		Components:     8,
		TargetAccuracy: 0.95,
	})
	if err != nil {
		log.Fatal(err)
	}
	reduced, err := res.Transform(y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sPCA: reduced to %d dims in %d iterations (%.1f simulated seconds)\n\n",
		reduced.C, res.Iterations, res.Metrics.SimSeconds)

	// --- k-means on the reduced vs the raw vectors ----------------------
	raw := y.Dense()
	kRaw, err := kmeans.Fit(raw, kmeans.DefaultOptions(clusters))
	if err != nil {
		log.Fatal(err)
	}
	kRed, err := kmeans.Fit(reduced, kmeans.DefaultOptions(clusters))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("k-means on raw %d-dim vectors:      %d iterations, inertia %.0f\n",
		dims, kRaw.Iterations, kRaw.Inertia)
	fmt.Printf("k-means on reduced %d-dim vectors:    %d iterations, inertia %.0f\n",
		reduced.C, kRed.Iterations, kRed.Inertia)

	// The reduced clustering must agree with the raw clustering: measure
	// pairwise co-assignment agreement on a sample.
	agree, total := coAssignmentAgreement(kRaw.Assign, kRed.Assign, 2000)
	fmt.Printf("\nco-assignment agreement raw vs reduced: %.1f%% of %d sampled pairs\n",
		100*float64(agree)/float64(total), total)

	// And the distance computations shrink by dims/reduced.C per iteration.
	fmt.Printf("per-iteration distance work: %dx fewer multiply-adds after PCA\n",
		dims/reduced.C)
}

// coAssignmentAgreement counts sampled row pairs on which the two
// clusterings agree about "same cluster vs different cluster" (cluster ids
// themselves are arbitrary).
func coAssignmentAgreement(a, b []int, pairs int) (agree, total int) {
	rng := matrix.NewRNG(99)
	n := len(a)
	for t := 0; t < pairs; t++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		total++
		if (a[i] == a[j]) == (b[i] == b[j]) {
			agree++
		}
	}
	return agree, total
}
