// Quickstart: generate a small synthetic dataset, fit sPCA on the simulated
// Spark engine, and inspect the components, the convergence history, and the
// simulated-cluster cost of the run.
package main

import (
	"fmt"
	"log"

	"spca"
)

func main() {
	// A Tweets-like sparse binary matrix: 5,000 rows, 500 columns.
	y := spca.GenerateDataset(spca.DatasetSpec{
		Kind: spca.Tweets,
		Rows: 5000,
		Cols: 500,
		Seed: 1,
	})
	fmt.Printf("dataset: %d x %d with %d non-zeros (%.2f%% dense)\n\n",
		y.R, y.C, y.NNZ(), 100*float64(y.NNZ())/(float64(y.R)*float64(y.C)))

	// Extract 10 principal components with sPCA on the Spark-like engine,
	// stopping at 95% of the accuracy an exact PCA would reach.
	res, err := spca.Fit(y, spca.Config{
		Algorithm:      spca.SPCASpark,
		Components:     10,
		TargetAccuracy: 0.95,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged in %d EM iterations\n", res.Iterations)
	for _, h := range res.History {
		fmt.Printf("  iteration %d: reconstruction error %.4f (%.1f%% of ideal accuracy), %.1f simulated seconds\n",
			h.Iter, h.Err, h.Accuracy*100, h.SimSeconds)
	}
	fmt.Printf("\nsimulated cluster cost: %s\n", res.Metrics.String())

	// Project the data onto the components (dimensionality reduction):
	// 500 columns become 10.
	x, err := res.Transform(y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatent representation: %d x %d\n", x.R, x.C)
	fmt.Printf("first row's latent position: %v\n", rounded(x.Row(0)))
}

func rounded(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*1000)) / 1000
	}
	return out
}
