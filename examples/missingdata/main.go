// Missingdata: the §2.4 PPCA property — "since PPCA uses expectation
// maximization, the projections of principal components can be obtained even
// when some data values are missing". The example builds a Diabetes-like
// dense matrix of NMR spectra, knocks out 30% of the measurements, fits PPCA
// on the incomplete data, and compares its imputation of the missing entries
// against mean imputation.
package main

import (
	"fmt"
	"log"
	"math"

	"spca"
)

func main() {
	const (
		patients = 200
		freqs    = 120
		missing  = 0.30
	)
	full := spca.GenerateDataset(spca.DatasetSpec{
		Kind: spca.Diabetes,
		Rows: patients,
		Cols: freqs,
		Rank: 6,
		Seed: 11,
	}).Dense()

	// Knock out 30% of the measurements.
	holed := full.Clone()
	rng := newLCG(5)
	var holes int
	for i := range holed.Data {
		if rng.next() < missing {
			holed.Data[i] = math.NaN()
			holes++
		}
	}
	fmt.Printf("spectra: %d patients x %d frequencies, %d measurements hidden (%.0f%%)\n\n",
		patients, freqs, holes, 100*missing)

	// Fit PPCA on the incomplete matrix.
	res, err := spca.FitMissingConfig(holed, spca.Config{Components: 6, MaxIter: 60, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPCA fitted in %d EM iterations (noise variance %.4g)\n",
		res.Iterations, res.SS)

	// Impute and compare against the hidden ground truth.
	imputed := res.Impute(holed)
	var ppcaErr, meanErr float64
	for i, v := range holed.Data {
		if !math.IsNaN(v) {
			continue
		}
		truth := full.Data[i]
		ppcaErr += math.Abs(imputed.Data[i] - truth)
		meanErr += math.Abs(res.Mean[i%freqs] - truth)
	}
	ppcaErr /= float64(holes)
	meanErr /= float64(holes)

	fmt.Printf("\nmean absolute imputation error on the hidden entries:\n")
	fmt.Printf("  column-mean imputation: %.4f\n", meanErr)
	fmt.Printf("  PPCA imputation:        %.4f (%.1fx better)\n", ppcaErr, meanErr/ppcaErr)

	// The latent positions are available for every patient, holes or not.
	fmt.Printf("\nlatent position of patient 0: %v\n", rounded(res.Latent.Row(0)))
}

// newLCG is a tiny deterministic uniform generator for the hole mask.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }

func (l *lcg) next() float64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return float64(l.s>>11) / (1 << 53)
}

func rounded(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Round(x*100) / 100
	}
	return out
}
