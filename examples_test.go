package spca_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun builds and runs every example program end to end, checking
// each exits cleanly and prints its headline output. Run with -short to skip
// (each example takes a few seconds).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example runs in -short mode")
	}
	cases := []struct {
		dir  string
		want string // substring the example must print
	}{
		{"quickstart", "latent representation"},
		{"textmining", "intermediate data shuffled"},
		{"imagefeatures", "co-assignment agreement"},
		{"missingdata", "PPCA imputation"},
		{"mixturemodels", "cluster recovery"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), tc.dir)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+tc.dir)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s timed out", tc.dir)
			}
			if runErr != nil {
				t.Fatalf("run failed: %v\n%s", runErr, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}
