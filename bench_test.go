package spca_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark runs a reduced (Quick-profile) version of the corresponding
// experiment on the simulated cluster and reports the headline quantity the
// paper's table or figure shows via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in miniature. cmd/experiments runs the
// same experiments at full scale; EXPERIMENTS.md records those results.

import (
	"io"
	"strconv"
	"strings"
	"testing"

	"spca/internal/experiments"
)

func quick() experiments.Runner {
	return experiments.Runner{Profile: experiments.Quick}
}

// seconds parses a rendered running-time cell.
func seconds(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

// BenchmarkTable1Complexity measures the per-method compute/communication of
// Table 1 and reports sPCA's advantage over the covariance method.
func BenchmarkTable1Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := quick().Table1()
		if err != nil {
			b.Fatal(err)
		}
		covOps := seconds(b, tab.Rows[0][3])
		spcaOps := seconds(b, tab.Rows[3][3])
		b.ReportMetric(covOps/spcaOps, "cov-ops/spca-ops")
	}
}

// BenchmarkTable2RunningTimes regenerates the running-time table and reports
// the Mahout-vs-sPCA ratio on the largest Tweets row.
func BenchmarkTable2RunningTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := quick().Table2()
		if err != nil {
			b.Fatal(err)
		}
		// Row 2 is the largest tweets configuration.
		mr := seconds(b, tab.Rows[2][4])
		mahout := seconds(b, tab.Rows[2][5])
		b.ReportMetric(mahout/mr, "mahout/spca-time")
	}
}

// BenchmarkFig4AccuracyBioText reports how much longer Mahout-PCA runs than
// sPCA-MapReduce on the Bio-Text accuracy trace.
func BenchmarkFig4AccuracyBioText(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := quick().Fig4()
		if err != nil {
			b.Fatal(err)
		}
		sp := fig.Series[0]
		mh := fig.Series[1]
		b.ReportMetric(mh.X[len(mh.X)-1]/sp.X[len(sp.X)-1], "mahout/spca-endtime")
		b.ReportMetric(sp.Y[len(sp.Y)-1], "spca-final-accuracy-%")
	}
}

// BenchmarkFig5SmartGuessTweets reports the first-iteration accuracy gain of
// sPCA-SG over the random start.
func BenchmarkFig5SmartGuessTweets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := quick().Fig5()
		if err != nil {
			b.Fatal(err)
		}
		sg := fig.Series[0]
		plain := fig.Series[1]
		b.ReportMetric(sg.Y[0]-plain.Y[0], "sg-accuracy-gain-pts")
	}
}

// BenchmarkFig6RowScaling reports the time-to-95%-accuracy ratio at the
// largest row count of the Figure 6 sweep.
func BenchmarkFig6RowScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := quick().Fig6()
		if err != nil {
			b.Fatal(err)
		}
		sp := fig.Series[0]
		mh := fig.Series[1]
		n := len(sp.Y) - 1
		b.ReportMetric(mh.Y[n]/sp.Y[n], "mahout/spca-at-scale")
	}
}

// BenchmarkFig7ColumnScaling reports the MLlib/sPCA time ratio at the
// largest dimensionality both algorithms survive, and how many sweep points
// MLlib fails on.
func BenchmarkFig7ColumnScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := quick().Fig7()
		if err != nil {
			b.Fatal(err)
		}
		sp := fig.Series[0]
		ml := fig.Series[1]
		lastShared := -1
		fails := 0
		for j := range ml.X {
			if ml.Annotations[j] == "" {
				lastShared = j
			} else {
				fails++
			}
		}
		b.ReportMetric(ml.Y[lastShared]/sp.Y[lastShared], "mllib/spca-time")
		b.ReportMetric(float64(fails), "mllib-failures")
	}
}

// BenchmarkFig8DriverMemory reports MLlib's driver-memory blowup relative to
// sPCA at the largest dimensionality.
func BenchmarkFig8DriverMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := quick().Fig8()
		if err != nil {
			b.Fatal(err)
		}
		sp := fig.Series[0]
		ml := fig.Series[1]
		n := len(sp.Y) - 1
		b.ReportMetric(ml.Y[n]/sp.Y[n], "mllib/spca-driver-mem")
	}
}

// BenchmarkTable3Ablations reports the speedup each optimization provides.
func BenchmarkTable3Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := quick().Table3()
		if err != nil {
			b.Fatal(err)
		}
		for col, name := range []string{"meanprop", "intermediate", "frobenius"} {
			with := seconds(b, tab.Rows[0][col+1])
			without := seconds(b, tab.Rows[1][col+1])
			b.ReportMetric(without/with, name+"-speedup")
		}
	}
}

// BenchmarkTable4Speedup reports the 64-core speedup of sPCA-Spark.
func BenchmarkTable4Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := quick().Table4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(seconds(b, tab.Rows[1][3]), "speedup-64-cores")
	}
}

// BenchmarkRenderAll exercises the full harness end to end (all tables and
// figures rendered to a discard writer), which is what cmd/experiments does.
func BenchmarkRenderAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := (quick()).Run("all", io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntermediateData reports the Mahout/sPCA intermediate-data
// reduction factor of the §5.2 comparison.
func BenchmarkIntermediateData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := quick().Intermediate()
		if err != nil {
			b.Fatal(err)
		}
		// Last column is the reduction factor, e.g. "21x".
		last := tab.Rows[len(tab.Rows)-1]
		red := last[len(last)-1]
		v, err := strconv.ParseFloat(strings.TrimSuffix(red, "x"), 64)
		if err != nil {
			b.Fatalf("cannot parse reduction %q: %v", red, err)
		}
		b.ReportMetric(v, "mahout/spca-intermediate")
	}
}
