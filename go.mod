module spca

go 1.22
