package spca_test

import (
	"reflect"
	"testing"
	"time"

	"spca"
	"spca/internal/matrix"
	"spca/internal/parallel"
)

// TestFitDeterministicUnderParallelism fits every algorithm twice — once with
// the kernel pool forced sequential and once with chunked parallel execution
// (4 workers, forced even on a single-core machine) — and requires the entire
// Result to be bit-identical: components, mean, error history, and all
// simulated-cluster metrics. This is the contract that lets the parallel
// kernels change real wall-clock time without perturbing a single number in
// the reproduced tables and figures.
func TestFitDeterministicUnderParallelism(t *testing.T) {
	y := spca.GenerateDataset(spca.DatasetSpec{Kind: spca.Diabetes, Rows: 150, Cols: 48, Rank: 4, Seed: 9})
	for _, alg := range []spca.Algorithm{
		spca.LocalPPCA,
		spca.SPCAMapReduce,
		spca.SPCASpark,
		spca.MahoutPCA,
		spca.MLlibPCA,
		spca.SVDBidiag,
	} {
		cfg := spca.Config{Algorithm: alg, Components: 4, MaxIter: 4}

		parallel.SetSequential(true)
		seq, err := spca.Fit(y, cfg)
		parallel.SetSequential(false)
		if err != nil {
			t.Fatalf("%s sequential: %v", alg, err)
		}

		parallel.SetWorkers(4)
		par, err := spca.Fit(y, cfg)
		parallel.SetWorkers(0)
		if err != nil {
			t.Fatalf("%s parallel: %v", alg, err)
		}

		for i, v := range seq.Components.Data {
			if v != par.Components.Data[i] {
				t.Fatalf("%s: component element %d differs: %v vs %v", alg, i, v, par.Components.Data[i])
			}
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%s: results differ under parallelism:\nseq: err=%v iters=%d metrics=%v\npar: err=%v iters=%d metrics=%v",
				alg, seq.Err, seq.Iterations, seq.Metrics, par.Err, par.Iterations, par.Metrics)
		}
	}
}

// BenchmarkParallelSpeedup measures the real-time speedup of the parallel
// kernels on a representative dense multiply and reports it as a metric. On a
// single-core machine this hovers around 1.0; on the multi-core machines the
// simulated cluster stands in for, it should exceed 2x.
func BenchmarkParallelSpeedup(b *testing.B) {
	rng := matrix.NewRNG(42)
	a := matrix.NormRnd(rng, 512, 512)
	c := matrix.NormRnd(rng, 512, 512)

	const reps = 3
	measure := func() float64 {
		a.Mul(c) // warm up caches and the pool
		start := time.Now()
		for r := 0; r < reps; r++ {
			a.Mul(c)
		}
		return time.Since(start).Seconds() / reps
	}

	for i := 0; i < b.N; i++ {
		parallel.SetSequential(true)
		seqSec := measure()
		parallel.SetSequential(false)
		parSec := measure()
		b.ReportMetric(seqSec/parSec, "speedup")
		b.ReportMetric(float64(parallel.Workers()), "workers")
	}
}
