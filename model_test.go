package spca

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"spca/internal/matrix"
)

func TestModelRoundTrip(t *testing.T) {
	y := smallDataset(t)
	res, err := Fit(y, Config{Algorithm: SPCASpark, Components: 3, MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != res.Algorithm {
		t.Fatalf("algorithm %q != %q", got.Algorithm, res.Algorithm)
	}
	if got.Components.MaxAbsDiff(res.Components) != 0 {
		t.Fatal("components not preserved exactly")
	}
	if got.NoiseVariance != res.NoiseVariance {
		t.Fatalf("noise %v != %v", got.NoiseVariance, res.NoiseVariance)
	}
	for i, v := range res.Mean {
		if got.Mean[i] != v {
			t.Fatal("mean not preserved exactly")
		}
	}
	// The loaded model transforms identically.
	a, err := res.Transform(y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Transform(y)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("loaded model transforms differently")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	y := smallDataset(t)
	res, err := Fit(y, Config{Algorithm: MLlibPCA, Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.spca")
	if err := res.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Orthonormal flag survives: baseline models transform by projection.
	a, _ := res.Transform(y)
	b, _ := got.Transform(y)
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("orthonormal flag lost in round trip")
	}
}

func TestLoadModelErrors(t *testing.T) {
	cases := []string{
		"",
		"not a model",
		"spcamodel 1\nbogus line\n",
		"spcamodel 1\nnoise abc\n",
		"spcamodel 1\nmean 1 2\ncomponents\ndmx 3 1\n1\n2\n3\n", // mean/components mismatch
		"spcamodel 1\nalgorithm x\n",                            // truncated
	}
	for _, c := range cases {
		if _, err := LoadModel(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
	if _, err := LoadModelFile("/nonexistent/model"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// fnv64a fingerprints a byte stream the same way the snapshot trailer does.
func fnv64a(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// TestModelGoldenFingerprint pins the serialized bytes of a fixed fit: the
// model format, the exact-float rendering, and the fit's bit-reproducibility
// all feed one FNV-64a fingerprint. If this changes, either the numerics or
// the file format drifted — both are contract breaks for the registry, whose
// persisted generations must reload bit-identically across daemon versions.
func TestModelGoldenFingerprint(t *testing.T) {
	y := smallDataset(t)
	res, err := Fit(y, Config{Algorithm: SPCASpark, Components: 3, MaxIter: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = uint64(0xafa1d299771d97db)
	got := fnv64a(buf.Bytes())
	if got != golden {
		t.Fatalf("model fingerprint %#016x, golden %#016x", got, golden)
	}
	// Save twice: byte determinism is what makes the fingerprint meaningful.
	var buf2 bytes.Buffer
	if err := res.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Save is not byte-deterministic")
	}
	t.Logf("fingerprint %#016x", got)
}

// TestModelTransformIntoParity checks the in-place forms against their
// allocating counterparts bit for bit, for both the posterior (PPCA) and
// orthonormal (baseline) projection paths, sparse and dense inputs.
func TestModelTransformIntoParity(t *testing.T) {
	y := smallDataset(t)
	for _, alg := range []Algorithm{SPCASpark, MLlibPCA} {
		res, err := Fit(y, Config{Algorithm: alg, Components: 3, MaxIter: 8})
		if err != nil {
			t.Fatal(err)
		}
		m := &res.Model
		want, err := m.Transform(y)
		if err != nil {
			t.Fatal(err)
		}
		dst := matrix.NewDense(y.R, 3)
		if _, err := m.TransformInto(dst, y); err != nil {
			t.Fatal(err)
		}
		if dst.MaxAbsDiff(want) != 0 {
			t.Fatalf("%s: TransformInto differs from Transform", alg)
		}
		// Repeat into the same dst: overwrite semantics, identical bytes.
		if _, err := m.TransformInto(dst, y); err != nil {
			t.Fatal(err)
		}
		if dst.MaxAbsDiff(want) != 0 {
			t.Fatalf("%s: second TransformInto differs", alg)
		}
		// Dense overload.
		yd := y.Dense()
		wantD, err := m.TransformDense(yd)
		if err != nil {
			t.Fatal(err)
		}
		if wantD.MaxAbsDiff(want) != 0 {
			t.Fatalf("%s: dense and sparse transforms differ", alg)
		}
		if _, err := m.TransformDenseInto(dst, yd); err != nil {
			t.Fatal(err)
		}
		if dst.MaxAbsDiff(want) != 0 {
			t.Fatalf("%s: TransformDenseInto differs", alg)
		}
		// ReconstructInto parity.
		rec, err := m.Reconstruct(want)
		if err != nil {
			t.Fatal(err)
		}
		recDst := matrix.NewDense(y.R, y.C)
		if _, err := m.ReconstructInto(recDst, want); err != nil {
			t.Fatal(err)
		}
		if recDst.MaxAbsDiff(rec) != 0 {
			t.Fatalf("%s: ReconstructInto differs from Reconstruct", alg)
		}
		// Wrong dst shapes are typed dimension errors, not corruption.
		if _, err := m.TransformInto(matrix.NewDense(y.R, 5), y); !errors.Is(err, ErrDimMismatch) {
			t.Fatalf("%s: bad dst error = %v, want ErrDimMismatch", alg, err)
		}
	}
}

// TestReconstructDimMismatch pins the fix for Reconstruct silently accepting
// latent matrices of the wrong width: the error is typed and the input is
// not touched.
func TestReconstructDimMismatch(t *testing.T) {
	y := smallDataset(t)
	res, err := Fit(y, Config{Algorithm: SPCASpark, Components: 3, MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	bad := matrix.NewDense(4, 5) // model has 3 components
	if _, err := res.Reconstruct(bad); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("Reconstruct(wrong width) error = %v, want ErrDimMismatch", err)
	}
	if _, err := res.Transform(matrix.NewSparse(3, 7)); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("Transform(wrong width) error = %v, want ErrDimMismatch", err)
	}
	if _, err := res.ExplainedVariance(matrix.NewSparse(3, 7)); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("ExplainedVariance(wrong width) error = %v, want ErrDimMismatch", err)
	}
}

// TestModelCorruptionDetected flips one byte of a saved model and checks the
// checksum trailer rejects it with the snapshot-corruption sentinel.
func TestModelCorruptionDetected(t *testing.T) {
	y := smallDataset(t)
	res, err := Fit(y, Config{Algorithm: SPCASpark, Components: 2, MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x20
	if _, err := LoadModel(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupt model error = %v, want ErrBadSnapshot", err)
	}
}
