package spca

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestModelRoundTrip(t *testing.T) {
	y := smallDataset(t)
	res, err := Fit(y, Config{Algorithm: SPCASpark, Components: 3, MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != res.Algorithm {
		t.Fatalf("algorithm %q != %q", got.Algorithm, res.Algorithm)
	}
	if got.Components.MaxAbsDiff(res.Components) != 0 {
		t.Fatal("components not preserved exactly")
	}
	if got.NoiseVariance != res.NoiseVariance {
		t.Fatalf("noise %v != %v", got.NoiseVariance, res.NoiseVariance)
	}
	for i, v := range res.Mean {
		if got.Mean[i] != v {
			t.Fatal("mean not preserved exactly")
		}
	}
	// The loaded model transforms identically.
	a, err := res.Transform(y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Transform(y)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("loaded model transforms differently")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	y := smallDataset(t)
	res, err := Fit(y, Config{Algorithm: MLlibPCA, Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.spca")
	if err := res.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Orthonormal flag survives: baseline models transform by projection.
	a, _ := res.Transform(y)
	b, _ := got.Transform(y)
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("orthonormal flag lost in round trip")
	}
}

func TestLoadModelErrors(t *testing.T) {
	cases := []string{
		"",
		"not a model",
		"spcamodel 1\nbogus line\n",
		"spcamodel 1\nnoise abc\n",
		"spcamodel 1\nmean 1 2\ncomponents\ndmx 3 1\n1\n2\n3\n", // mean/components mismatch
		"spcamodel 1\nalgorithm x\n",                            // truncated
	}
	for _, c := range cases {
		if _, err := LoadModel(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
	if _, err := LoadModelFile("/nonexistent/model"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
