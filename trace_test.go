package spca

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"spca/internal/matrix"
)

// traceAlgorithms lists every algorithm the trace subsystem covers.
func traceAlgorithms() []Algorithm {
	return []Algorithm{LocalPPCA, SPCAMapReduce, SPCASpark, MahoutPCA, MLlibPCA, SVDBidiag, RSVDMapReduce, RSVDSpark}
}

func fitTraced(t *testing.T, alg Algorithm, mutate func(*Config)) *Result {
	t.Helper()
	y := smallDataset(t)
	cfg := Config{Algorithm: alg, Components: 3, MaxIter: 3, CollectTrace: true}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Fit(y, cfg)
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	if res.Trace == nil {
		t.Fatalf("%s: CollectTrace set but Result.Trace is nil", alg)
	}
	return res
}

// TestTraceStructure checks the span tree every algorithm produces: one root
// fit span, one phase span per charged cluster phase, and iteration stats
// matching the result's history.
func TestTraceStructure(t *testing.T) {
	for _, alg := range traceAlgorithms() {
		res := fitTraced(t, alg, nil)
		tr := res.Trace

		fits := tr.FindKind(KindFit)
		if len(fits) != 1 {
			t.Errorf("%s: %d fit spans, want 1", alg, len(fits))
			continue
		}
		if fits[0].Parent != 0 {
			t.Errorf("%s: fit span has parent %d, want root (0)", alg, fits[0].Parent)
		}
		if got := len(tr.FindKind(KindPhase)); got != int(res.Metrics.Phases) {
			t.Errorf("%s: %d phase spans, cluster charged %d phases", alg, got, res.Metrics.Phases)
		}
		if len(tr.Iterations) == 0 {
			t.Errorf("%s: no iteration stats in trace", alg)
		}
		if len(res.History) > 0 && len(tr.Iterations) != len(res.History) {
			t.Errorf("%s: %d trace iterations, history has %d", alg, len(tr.Iterations), len(res.History))
		}
		// Every non-root span must reference an existing parent.
		ids := map[int]bool{}
		for _, s := range tr.Spans {
			ids[s.ID] = true
		}
		for _, s := range tr.Spans {
			if s.Parent != 0 && !ids[s.Parent] {
				t.Errorf("%s: span %q parent %d not in trace", alg, s.Name, s.Parent)
			}
		}
	}
}

// TestTraceGoldenFingerprints pins the FNV fingerprint of the serialized span
// tree per algorithm. A change here means the trace layout, span order, or a
// cost charge moved — deliberate changes must update the constants.
func TestTraceGoldenFingerprints(t *testing.T) {
	golden := map[Algorithm]uint64{
		LocalPPCA:     0x4f63394ba8e98f3c,
		SPCAMapReduce: 0xeb53a8ac35bd7766,
		SPCASpark:     0xae5704138f03fe9d,
		MahoutPCA:     0xfa1af892991a883c,
		MLlibPCA:      0x651bd4ec61edf4da,
		SVDBidiag:     0xa4d9058398b474f8,
		RSVDMapReduce: 0xf4125ca1a93dbd5f,
		RSVDSpark:     0x44065c71a7fce699,
	}
	for _, alg := range traceAlgorithms() {
		first := fitTraced(t, alg, nil).Trace.Fingerprint()
		second := fitTraced(t, alg, nil).Trace.Fingerprint()
		if first != second {
			t.Errorf("%s: trace not deterministic: %#x vs %#x", alg, first, second)
			continue
		}
		if want := golden[alg]; first != want {
			t.Errorf("%s: trace fingerprint %#x, golden %#x", alg, first, want)
		}
	}
}

// TestTraceMetricsSum is the subsystem's core accounting invariant: summing
// the leaf spans' attributes in emission order reproduces the end-of-run
// Metrics bit for bit (the spans carry the exact charges, not end-start
// differences).
func TestTraceMetricsSum(t *testing.T) {
	y := GenerateDataset(DatasetSpec{Kind: Tweets, Rows: 400, Cols: 120, Seed: 1})
	res, err := Fit(y, Config{Algorithm: SPCASpark, Components: 10, MaxIter: 4, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var sim, rec float64
	var ops, shuffle, disk, mat, tasks, failed, spec, phases int64
	for i := range res.Trace.Spans {
		s := &res.Trace.Spans[i]
		if s.Kind != KindPhase && s.Kind != KindDriver {
			continue
		}
		sim += s.AttrFloat("seconds")
		rec += s.AttrFloat("recovery_seconds")
		ops += s.AttrInt("compute_ops") + s.AttrInt("recomputed_ops")
		shuffle += s.AttrInt("shuffle_bytes")
		disk += s.AttrInt("disk_bytes") + s.AttrInt("recovery_disk_bytes")
		mat += s.AttrInt("materialized_bytes")
		tasks += s.AttrInt("tasks")
		failed += s.AttrInt("failed_attempts")
		spec += s.AttrInt("speculative_tasks")
		if s.Kind == KindPhase {
			phases++
		}
	}
	m := res.Metrics
	if sim != m.SimSeconds {
		t.Errorf("span seconds sum %v != SimSeconds %v", sim, m.SimSeconds)
	}
	if rec != m.RecoverySeconds {
		t.Errorf("span recovery sum %v != RecoverySeconds %v", rec, m.RecoverySeconds)
	}
	if ops != m.ComputeOps {
		t.Errorf("span ops sum %d != ComputeOps %d", ops, m.ComputeOps)
	}
	if shuffle != m.ShuffleBytes {
		t.Errorf("span shuffle sum %d != ShuffleBytes %d", shuffle, m.ShuffleBytes)
	}
	if disk != m.DiskBytes {
		t.Errorf("span disk sum %d != DiskBytes %d", disk, m.DiskBytes)
	}
	if mat != m.MaterializedBytes {
		t.Errorf("span materialized sum %d != MaterializedBytes %d", mat, m.MaterializedBytes)
	}
	if tasks != m.Tasks {
		t.Errorf("span tasks sum %d != Tasks %d", tasks, m.Tasks)
	}
	if failed != m.FailedAttempts || spec != m.SpeculativeTasks {
		t.Errorf("span fault sums (%d, %d) != Metrics (%d, %d)",
			failed, spec, m.FailedAttempts, m.SpeculativeTasks)
	}
	if phases != m.Phases {
		t.Errorf("%d phase spans != %d charged phases", phases, m.Phases)
	}
}

// TestTraceChaosRecoverySpans asserts that under an armed FaultPlan the trace
// carries the recovery story: recovery events on the faulted phases and
// recovery attributes summing to the metrics — and that the chaotic trace is
// still deterministic.
func TestTraceChaosRecoverySpans(t *testing.T) {
	run := func() *Result {
		return fitTraced(t, SPCASpark, func(cfg *Config) {
			cfg.Faults = &FaultPlan{
				Seed:                 7,
				TaskFailureRate:      0.2,
				NodeLossRate:         0.1,
				StragglerRate:        0.1,
				SpeculativeExecution: true,
				MaxAttempts:          12,
			}
		})
	}
	res := run()
	if res.Metrics.FailedAttempts == 0 {
		t.Fatal("fault plan injected no failures; test needs a harsher plan")
	}
	if len(res.Trace.FindEvents("recovery")) == 0 {
		t.Error("no recovery events in chaotic trace")
	}
	var failed int64
	var rec float64
	for i := range res.Trace.Spans {
		s := &res.Trace.Spans[i]
		if s.Kind == KindPhase {
			failed += s.AttrInt("failed_attempts")
			rec += s.AttrFloat("recovery_seconds")
		}
	}
	if failed != res.Metrics.FailedAttempts {
		t.Errorf("span failed-attempt sum %d != Metrics %d", failed, res.Metrics.FailedAttempts)
	}
	if rec != res.Metrics.RecoverySeconds {
		t.Errorf("span recovery-seconds sum %v != Metrics %v", rec, res.Metrics.RecoverySeconds)
	}
	if a, b := res.Trace.Fingerprint(), run().Trace.Fingerprint(); a != b {
		t.Errorf("chaotic trace not deterministic: %#x vs %#x", a, b)
	}
}

// TestTraceDriverCrashResume asserts the durability story in the trace: a
// crashed-and-resumed fit produces driver-crash and driver-restore events,
// puts the resumed incarnation's spans on their own lane, and two identical
// crashed runs produce bit-identical traces.
func TestTraceDriverCrashResume(t *testing.T) {
	run := func() *Result {
		return fitTraced(t, SPCASpark, func(cfg *Config) {
			cfg.MaxIter = 5
			cfg.Tol = -1
			cfg.Faults = &FaultPlan{DriverCrashIters: []int{2}}
			cfg.Checkpoint = CheckpointSpec{Interval: 1, Dir: t.TempDir()}
		})
	}
	res := run()
	if res.Metrics.DriverRestarts != 1 {
		t.Fatalf("DriverRestarts = %d, want 1", res.Metrics.DriverRestarts)
	}
	if len(res.Trace.FindEvents("driver-crash")) == 0 {
		t.Error("no driver-crash event in trace")
	}
	if len(res.Trace.FindEvents("driver-restore")) == 0 {
		t.Error("no driver-restore event in trace")
	}
	lanes := map[int]bool{}
	for _, s := range res.Trace.Spans {
		lanes[s.Lane] = true
	}
	if !lanes[0] || !lanes[1] {
		t.Errorf("want spans on lanes 0 and 1, got lanes %v", lanes)
	}
	// Both incarnations open a fit span; the crashed one closes via defer.
	if got := len(res.Trace.FindKind(KindFit)); got != 2 {
		t.Errorf("%d fit spans, want 2 (one per incarnation)", got)
	}
	if a, b := res.Trace.Fingerprint(), run().Trace.Fingerprint(); a != b {
		t.Errorf("crashed+resumed trace not deterministic: %#x vs %#x", a, b)
	}
}

// TestTraceSmoke is the end-to-end export path gated in make check: fit with
// a JSONL observer, re-parse the stream, and require the reconstructed trace
// to fingerprint identically to the in-memory one; then export Chrome
// trace_event JSON and validate it.
func TestTraceSmoke(t *testing.T) {
	y := smallDataset(t)
	var buf bytes.Buffer
	w := NewJSONLTraceWriter(&buf)
	res, err := Fit(y, Config{
		Algorithm: SPCASpark, Components: 3, MaxIter: 3,
		Observer: w, CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadJSONLTrace(&buf)
	if err != nil {
		t.Fatalf("re-parsing JSONL stream: %v", err)
	}
	if a, b := res.Trace.Fingerprint(), parsed.Fingerprint(); a != b {
		t.Fatalf("JSONL round-trip changed the trace: in-memory %#x, re-parsed %#x", a, b)
	}

	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, res.Trace); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(chrome.Bytes()) {
		t.Fatal("Chrome export is not valid JSON")
	}
	var export struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &export); err != nil {
		t.Fatal(err)
	}
	var complete int
	for _, e := range export.TraceEvents {
		if e.Ph == "X" {
			complete++
		}
	}
	if complete != len(res.Trace.Spans) {
		t.Fatalf("Chrome export has %d complete events, trace has %d spans", complete, len(res.Trace.Spans))
	}
}

// TestSummaryMatchesPhaseLog: the trace-derived Summary and the phase-log
// fallback (no trace collected) must agree field for field.
func TestSummaryMatchesPhaseLog(t *testing.T) {
	y := smallDataset(t)
	cfg := Config{Algorithm: SPCASpark, Components: 3, MaxIter: 3}
	plain, err := Fit(y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CollectTrace = true
	traced, err := Fit(y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := plain.Summary(), traced.Summary()
	if len(a) == 0 {
		t.Fatal("phase-log summary is empty")
	}
	if len(a) != len(b) {
		t.Fatalf("summaries differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("summary row %d differs:\n phase-log: %+v\n trace:     %+v", i, a[i], b[i])
		}
	}
}

// TestBaselineHistoryPopulated pins the satellite fix: the single-pass
// baselines must report one real iteration stat instead of an empty history.
func TestBaselineHistoryPopulated(t *testing.T) {
	for _, alg := range []Algorithm{MLlibPCA, SVDBidiag} {
		res, err := Fit(smallDataset(t), Config{Algorithm: alg, Components: 3})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Iterations != 1 || len(res.History) != 1 {
			t.Fatalf("%s: Iterations=%d, len(History)=%d, want 1 and 1", alg, res.Iterations, len(res.History))
		}
		h := res.History[0]
		if h.Iter != 1 || h.Err != res.Err || h.SimSeconds != res.Metrics.SimSeconds {
			t.Errorf("%s: History[0] = %+v, want iter 1, err %v, t %v",
				alg, h, res.Err, res.Metrics.SimSeconds)
		}
	}
}

// TestConfigEntryPoints checks the unified Config-based signatures against
// their deprecated positional wrappers and the shared validation path.
func TestConfigEntryPoints(t *testing.T) {
	y := smallDataset(t)
	path := filepath.Join(t.TempDir(), "y.spmx")
	if err := SaveSparseFile(path, y, false); err != nil {
		t.Fatal(err)
	}

	oldStream, err := FitStreamFile(path, 3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	newStream, err := FitStreamFileConfig(path, Config{Components: 3, MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if oldStream.Components.MaxAbsDiff(newStream.Components) != 0 {
		t.Error("FitStreamFile and FitStreamFileConfig disagree")
	}
	// The Config path validates; the deprecated wrapper inherits it.
	if _, err := FitStreamFileConfig(path, Config{TargetAccuracy: 2}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config = %v, want ErrBadConfig", err)
	}
	// Tracing works through the streaming entry point too.
	traced, err := FitStreamFileConfig(path, Config{Components: 3, MaxIter: 5, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil || len(traced.Trace.FindKind(KindFit)) != 1 {
		t.Error("streamed fit did not produce a fit span")
	}

	dense := denseWithHole(t, y)
	oldMissing, err := FitMissing(dense, 3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	newMissing, err := FitMissingConfig(dense, Config{Components: 3, MaxIter: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if oldMissing.Components.MaxAbsDiff(newMissing.Components) != 0 {
		t.Error("FitMissing and FitMissingConfig disagree")
	}
	if _, err := FitMissingConfig(nil, Config{Components: 3}); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("nil dense input = %v, want ErrEmptyInput", err)
	}
	inf := dense.Clone()
	inf.Set(0, 0, math.Inf(1))
	if _, err := FitMissingConfig(inf, Config{Components: 3}); !errors.Is(err, ErrNonFiniteInput) {
		t.Errorf("Inf dense input = %v, want ErrNonFiniteInput", err)
	}
	if _, err := FitMissingConfig(dense, Config{Components: 3, DivergeWindow: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config = %v, want ErrBadConfig", err)
	}
}

// denseWithHole densifies y and pokes a few NaN holes for the missing-data
// entry point.
func denseWithHole(t *testing.T, y *Sparse) *Dense {
	t.Helper()
	d := matrix.NewDense(y.R, y.C)
	for i := 0; i < y.R; i++ {
		row := y.Row(i)
		for k, j := range row.Indices {
			d.Set(i, j, row.Values[k])
		}
	}
	d.Set(1, 2, math.NaN())
	d.Set(7, 5, math.NaN())
	return d
}

// TestObserverCallbacks checks that a user observer sees a balanced span
// stream: every SpanStart has a matching SpanEnd with the same name and ID.
func TestObserverCallbacks(t *testing.T) {
	obs := &countingObserver{open: map[int]string{}}
	_, err := Fit(smallDataset(t), Config{
		Algorithm: SPCAMapReduce, Components: 3, MaxIter: 2, Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.starts == 0 || obs.ends == 0 || obs.iters == 0 {
		t.Fatalf("observer saw starts=%d ends=%d iters=%d; want all > 0",
			obs.starts, obs.ends, obs.iters)
	}
	if obs.starts != obs.ends {
		t.Errorf("unbalanced span stream: %d starts, %d ends", obs.starts, obs.ends)
	}
	if len(obs.open) != 0 {
		t.Errorf("spans left open at end of fit: %v", obs.open)
	}
	if obs.mismatched != 0 {
		t.Errorf("%d SpanEnd callbacks did not match their SpanStart", obs.mismatched)
	}
}

type countingObserver struct {
	open                            map[int]string
	starts, ends, iters, mismatched int
}

func (o *countingObserver) SpanStart(s Span) {
	o.starts++
	o.open[s.ID] = s.Name
}

func (o *countingObserver) SpanEnd(s Span) {
	o.ends++
	if name, ok := o.open[s.ID]; !ok || name != s.Name {
		o.mismatched++
	}
	delete(o.open, s.ID)
}

func (o *countingObserver) Event(TraceEvent)             {}
func (o *countingObserver) IterationDone(TraceIteration) { o.iters++ }
